"""Round-restricted parallel greedy allocation (in the spirit of Adler et al.).

Adler, Chakrabarti, Mitzenmacher and Rasmussen introduced the parallel
balls-into-bins model cited in the paper's related work: each ball may contact
``d`` bins, communication proceeds in ``r`` synchronous rounds, and the
achievable maximum load is ``Θ((log n / log log n)^{1/r})`` — a different
trade-off from the sequential protocols studied in the paper.

The implementation follows the classical collision scheme:

* every unplaced ball picks ``d`` candidate bins uniformly at random;
* in each round, every bin looks at the requests it received and *commits*
  the requesters as long as its committed load stays below the round's
  threshold; remaining requesters stay unplaced;
* after ``rounds`` rounds, any still-unplaced balls fall back to a single
  uniformly random choice (so the protocol always terminates, as in the
  original paper's final "clean-up" round).

The per-round thresholds grow geometrically, which is enough to observe the
qualitative round/load trade-off in the benchmarks.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from repro.core.protocol import AllocationProtocol, register_protocol
from repro.core.result import AllocationResult
from repro.core.thresholds import ceil_div
from repro.errors import ConfigurationError
from repro.runtime.costs import CostModel
from repro.runtime.probes import ProbeStream, RandomProbeStream
from repro.runtime.rng import SeedLike

__all__ = ["ParallelGreedyProtocol", "run_parallel_greedy"]


@register_protocol
class ParallelGreedyProtocol(AllocationProtocol):
    """Parallel greedy allocation with a bounded number of rounds.

    Parameters
    ----------
    d:
        Number of candidate bins contacted per ball and per round.
    rounds:
        Number of synchronous rounds before the clean-up round.
    """

    name = "parallel-greedy"

    def __init__(self, d: int = 2, rounds: int = 3) -> None:
        if d < 1:
            raise ConfigurationError(f"d must be at least 1, got {d}")
        if rounds < 1:
            raise ConfigurationError(f"rounds must be at least 1, got {rounds}")
        self.d = int(d)
        self.rounds = int(rounds)

    def params(self) -> dict[str, Any]:
        return {"d": self.d, "rounds": self.rounds}

    def allocate(
        self,
        n_balls: int,
        n_bins: int,
        seed: SeedLike = None,
        *,
        probe_stream: ProbeStream | None = None,
        record_trace: bool = False,
    ) -> AllocationResult:
        self.validate_size(n_balls, n_bins)
        stream = probe_stream or RandomProbeStream(n_bins, seed)
        if stream.n_bins != n_bins:
            raise ConfigurationError(
                "probe_stream.n_bins does not match the requested n_bins"
            )

        loads = np.zeros(n_bins, dtype=np.int64)
        placed = np.zeros(n_balls, dtype=bool)
        costs = CostModel()
        probes = 0
        average = ceil_div(n_balls, n_bins) if n_balls else 0

        for round_index in range(self.rounds):
            unplaced = np.flatnonzero(~placed)
            if unplaced.size == 0:
                break
            threshold = average + round_index  # geometric-ish relaxation
            candidates = stream.take(unplaced.size * self.d).reshape(
                unplaced.size, self.d
            )
            probes += unplaced.size * self.d
            costs.add_round(messages=int(unplaced.size * self.d))
            # Bins commit requests in a random order; processing requests in
            # stream order is an equivalent symmetric rule and keeps this
            # reproducible from the probe stream alone.
            for row_index, ball in enumerate(unplaced):
                row = candidates[row_index]
                candidate_loads = loads[row]
                best_pos = int(np.argmin(candidate_loads))
                if candidate_loads[best_pos] < threshold:
                    loads[row[best_pos]] += 1
                    placed[ball] = True

        # Clean-up round: any leftover ball takes one uniform choice.
        leftovers = np.flatnonzero(~placed)
        if leftovers.size:
            extra = stream.take(leftovers.size)
            probes += leftovers.size
            costs.add_round(messages=int(leftovers.size))
            np.add.at(loads, extra, 1)
            placed[leftovers] = True

        costs.add_probes(probes)
        return AllocationResult(
            protocol=self.name,
            n_balls=n_balls,
            n_bins=n_bins,
            loads=loads,
            allocation_time=probes,
            costs=costs,
            params=self.params(),
        )


def run_parallel_greedy(
    n_balls: int,
    n_bins: int,
    seed: SeedLike = None,
    *,
    d: int = 2,
    rounds: int = 3,
) -> AllocationResult:
    """Functional one-liner for :class:`ParallelGreedyProtocol`."""
    return ParallelGreedyProtocol(d=d, rounds=rounds).allocate(n_balls, n_bins, seed)
