"""Round-restricted parallel greedy allocation (in the spirit of Adler et al.).

Adler, Chakrabarti, Mitzenmacher and Rasmussen introduced the parallel
balls-into-bins model cited in the paper's related work: each ball may contact
``d`` bins, communication proceeds in ``r`` synchronous rounds, and the
achievable maximum load is ``Θ((log n / log log n)^{1/r})`` — a different
trade-off from the sequential protocols studied in the paper.

The implementation follows the classical collision scheme:

* every unplaced ball picks ``d`` candidate bins uniformly at random;
* in each round, every bin looks at the requests it received and *commits*
  the requesters as long as its committed load stays below the round's
  threshold; remaining requesters stay unplaced;
* after ``rounds`` rounds, any still-unplaced balls fall back to a single
  uniformly random choice (so the protocol always terminates, as in the
  original paper's final "clean-up" round).

Within a round, each ball offers its candidates one position at a time (``d``
sub-phases): in sub-phase ``j``, every still-unplaced ball submits its
``j``-th candidate, and a bin accepts the submissions it receives in ball
order while its load stays below the round threshold.  This symmetric rule is
fully vectorised with the same ``occurrence_ranks`` trick the window engine
of :mod:`repro.core.window` uses — acceptance of a request depends only on
the bin's load and the request's rank among same-bin requests of the
sub-phase — so no per-ball Python loop is needed.

The per-round thresholds follow a configurable *schedule*: ``"arithmetic"``
(the default, threshold ``ceil(m/n) + r`` in round ``r``) or ``"geometric"``
(threshold ``ceil(m/n)·2^r``), either of which is enough to observe the
qualitative round/load trade-off in the benchmarks.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from repro.core.protocol import AllocationProtocol, register_protocol
from repro.core.result import AllocationResult
from repro.core.thresholds import ceil_div
from repro.core.window import occurrence_ranks
from repro.errors import ConfigurationError
from repro.runtime.costs import CostModel
from repro.runtime.probes import ProbeStream, RandomProbeStream
from repro.runtime.rng import SeedLike

__all__ = ["ParallelGreedyProtocol", "run_parallel_greedy"]

_SCHEDULES = ("arithmetic", "geometric")


@register_protocol
class ParallelGreedyProtocol(AllocationProtocol):
    """Parallel greedy allocation with a bounded number of rounds.

    Parameters
    ----------
    d:
        Number of candidate bins contacted per ball and per round.
    rounds:
        Number of synchronous rounds before the clean-up round.
    schedule:
        Per-round threshold schedule: ``"arithmetic"`` (default) uses
        ``ceil(m/n) + r`` in round ``r``, ``"geometric"`` uses
        ``ceil(m/n) · 2^r``.
    """

    name = "parallel-greedy"

    def __init__(
        self, d: int = 2, rounds: int = 3, schedule: str = "arithmetic"
    ) -> None:
        if d < 1:
            raise ConfigurationError(f"d must be at least 1, got {d}")
        if rounds < 1:
            raise ConfigurationError(f"rounds must be at least 1, got {rounds}")
        if schedule not in _SCHEDULES:
            raise ConfigurationError(
                f"schedule must be one of {_SCHEDULES}, got {schedule!r}"
            )
        self.d = int(d)
        self.rounds = int(rounds)
        self.schedule = schedule

    def params(self) -> dict[str, Any]:
        return {"d": self.d, "rounds": self.rounds, "schedule": self.schedule}

    def round_threshold(self, average: int, round_index: int) -> int:
        """Commit threshold used in round ``round_index`` (0-based)."""
        if self.schedule == "arithmetic":
            return average + round_index
        return max(average, 1) * (1 << round_index)

    def allocate(
        self,
        n_balls: int,
        n_bins: int,
        seed: SeedLike = None,
        *,
        probe_stream: ProbeStream | None = None,
        record_trace: bool = False,
    ) -> AllocationResult:
        self.validate_size(n_balls, n_bins)
        stream = probe_stream or RandomProbeStream(n_bins, seed)
        if stream.n_bins != n_bins:
            raise ConfigurationError(
                "probe_stream.n_bins does not match the requested n_bins"
            )

        loads = np.zeros(n_bins, dtype=np.int64)
        placed = np.zeros(n_balls, dtype=bool)
        costs = CostModel()
        probes = 0
        average = ceil_div(n_balls, n_bins) if n_balls else 0

        for round_index in range(self.rounds):
            unplaced = np.flatnonzero(~placed)
            if unplaced.size == 0:
                break
            threshold = self.round_threshold(average, round_index)
            candidates = stream.take_matrix(unplaced.size, self.d)
            probes += unplaced.size * self.d
            costs.add_round(messages=int(unplaced.size * self.d))
            # d sub-phases: in sub-phase j every still-unplaced ball submits
            # its j-th candidate, and bins accept submissions in ball order
            # while below the round threshold.  A submission into bin b is
            # accepted iff loads[b] plus its rank among earlier same-bin
            # submissions of the sub-phase is below the threshold, so each
            # sub-phase is one occurrence_ranks pass — no per-ball loop.
            active = np.arange(unplaced.size)
            for j in range(self.d):
                if active.size == 0:
                    break
                requests = candidates[active, j]
                accepted = loads[requests] + occurrence_ranks(requests) < threshold
                if accepted.any():
                    loads += np.bincount(requests[accepted], minlength=n_bins)
                    placed[unplaced[active[accepted]]] = True
                    active = active[~accepted]

        # Clean-up round: any leftover ball takes one uniform choice.
        leftovers = np.flatnonzero(~placed)
        if leftovers.size:
            extra = stream.take(leftovers.size)
            probes += leftovers.size
            costs.add_round(messages=int(leftovers.size))
            np.add.at(loads, extra, 1)
            placed[leftovers] = True

        costs.add_probes(probes)
        return AllocationResult(
            protocol=self.name,
            n_balls=n_balls,
            n_bins=n_bins,
            loads=loads,
            allocation_time=probes,
            costs=costs,
            params=self.params(),
        )


def run_parallel_greedy(
    n_balls: int,
    n_bins: int,
    seed: SeedLike = None,
    *,
    d: int = 2,
    rounds: int = 3,
    schedule: str = "arithmetic",
) -> AllocationResult:
    """Functional one-liner for :class:`ParallelGreedyProtocol`."""
    return ParallelGreedyProtocol(d=d, rounds=rounds, schedule=schedule).allocate(
        n_balls, n_bins, seed
    )
