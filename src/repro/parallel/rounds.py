"""Round-restricted parallel greedy allocation (in the spirit of Adler et al.).

Adler, Chakrabarti, Mitzenmacher and Rasmussen introduced the parallel
balls-into-bins model cited in the paper's related work: each ball may contact
``d`` bins, communication proceeds in ``r`` synchronous rounds, and the
achievable maximum load is ``Θ((log n / log log n)^{1/r})`` — a different
trade-off from the sequential protocols studied in the paper.

The implementation follows the classical collision scheme:

* every unplaced ball picks ``d`` candidate bins uniformly at random;
* in each round, every bin looks at the requests it received and *commits*
  the requesters as long as its committed load stays below the round's
  threshold; remaining requesters stay unplaced;
* after ``rounds`` rounds, any still-unplaced balls fall back to a single
  uniformly random choice (so the protocol always terminates, as in the
  original paper's final "clean-up" round).

Within a round, each ball offers its candidates one position at a time (``d``
sub-phases): in sub-phase ``j``, every still-unplaced ball submits its
``j``-th candidate, and a bin accepts the submissions it receives in ball
order while its load stays below the round threshold.  The whole round is
committed by :func:`commit_round` in **one occurrence-rank pass**: since a
bin only ever rejects submissions once it is full (and stays full for the
rest of the round), the round's acceptances are exactly "each bin takes the
first ``threshold − load`` submissions it receives in (sub-phase, ball)
order, counting only balls not already placed in an earlier sub-phase".
One stable sort of all ``k·d`` flattened candidates (by bin, ties in
submission order) therefore fixes the per-bin queues once, and the
"withdrawn because placed earlier" condition is resolved by a short
vectorised fixpoint over that precomputed order — at most ``d`` linear
passes, no re-sorting and no per-sub-phase Python work.  The result is
bit-identical to running the ``d`` sub-phases one at a time, which the
test-suite certifies against a verbatim copy of the sub-phase loop.

The per-round thresholds follow a configurable *schedule*: ``"arithmetic"``
(the default, threshold ``ceil(m/n) + r`` in round ``r``) or ``"geometric"``
(threshold ``ceil(m/n)·2^r``), either of which is enough to observe the
qualitative round/load trade-off in the benchmarks.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from repro.core.protocol import AllocationProtocol, register_protocol
from repro.core.result import AllocationResult
from repro.core.thresholds import ceil_div
from repro.errors import ConfigurationError, ProtocolError
from repro.runtime.costs import CostModel
from repro.runtime.probes import ProbeStream, RandomProbeStream
from repro.runtime.rng import SeedLike

__all__ = ["ParallelGreedyProtocol", "commit_round", "run_parallel_greedy"]

_SCHEDULES = ("arithmetic", "geometric")


def commit_round(
    loads: np.ndarray, candidates: np.ndarray, threshold: int
) -> np.ndarray:
    """Commit one parallel round; bit-identical to ``d`` sequential sub-phases.

    Parameters
    ----------
    loads:
        Per-bin loads at the start of the round; **modified in place**.
    candidates:
        ``(k, d)`` candidate matrix of the round's unplaced balls, row ``i``
        holding ball ``i``'s candidates in sub-phase order.
    threshold:
        The round's commit threshold; bin ``b`` accepts at most
        ``max(threshold - loads[b], 0)`` submissions this round.

    Returns
    -------
    numpy.ndarray
        Boolean mask over the ``k`` balls: which were placed this round.

    Notes
    -----
    Within a round the bins' acceptance rule collapses to "take the first
    ``cap_b = threshold − loads[b]`` submissions in (sub-phase, ball) order"
    — rejected submissions never consume capacity, and a rejecting bin is
    already full.  The only sequential coupling between sub-phases is that a
    ball placed in sub-phase ``j`` *withdraws* its later candidates.  The
    flattened submission order is sorted once (stable, by bin), and a
    vectorised fixpoint then resolves the withdrawals over that fixed order:
    start from "every ball submits all ``d`` candidates", compute per-bin
    occurrence ranks of the currently submitted elements with a segmented
    cumulative sum (no re-sort), accept ranks below capacity, cut each ball
    back to its first accepted sub-phase, and repeat until the first-accepted
    vector stops changing.  Sub-phase 0 is exact immediately and sub-phase
    ``j`` becomes exact one pass after sub-phases ``< j``, so the loop
    converges in at most ``d`` passes (each O(k·d), against the single
    O(k·d log(k·d)) sort).
    """
    k, d = candidates.shape
    if k == 0:
        return np.zeros(0, dtype=bool)
    n_bins = loads.size
    capacity = np.maximum(threshold - loads, 0)

    if d == 1:
        # One sub-phase: no withdrawals are possible, so acceptance is a
        # plain capacity-rank test — no fixpoint needed.
        requests = candidates[:, 0]
        order = np.argsort(requests, kind="stable")
        sorted_bins = requests[order]
        new_group = np.empty(k, dtype=bool)
        new_group[0] = True
        new_group[1:] = sorted_bins[1:] != sorted_bins[:-1]
        ranks_sorted = np.arange(k, dtype=np.int64) - (
            np.flatnonzero(new_group)[np.cumsum(new_group) - 1]
        )
        placed = np.empty(k, dtype=bool)
        placed[order] = ranks_sorted < capacity[sorted_bins]
        loads += np.bincount(requests[placed], minlength=n_bins)
        return placed

    # Flatten column-major so element e = j*k + i is ball i's sub-phase-j
    # submission: ascending e is exactly (sub-phase, ball) submission order.
    # int32 keys sort measurably faster and bin indices always fit.
    flat = candidates.T.ravel()
    order = np.argsort(flat.astype(np.int32, copy=False), kind="stable")
    sorted_bins = flat[order]
    new_group = np.empty(order.size, dtype=bool)
    new_group[0] = True
    new_group[1:] = sorted_bins[1:] != sorted_bins[:-1]
    group_id = np.cumsum(new_group) - 1
    group_start = np.flatnonzero(new_group)
    capacity_sorted = capacity[sorted_bins]

    cols = np.repeat(np.arange(d, dtype=np.int64), k)
    first_accepted = np.full(k, d, dtype=np.int64)  # d = not placed
    accepted = np.zeros(order.size, dtype=bool)
    cols_sorted = cols[order]
    balls_sorted = order % k  # e = j*k + i  =>  ball index i

    for _ in range(d + 1):
        # A ball submits sub-phases up to and including its first accepted one.
        submitted_sorted = cols_sorted <= first_accepted[balls_sorted]
        running = np.cumsum(submitted_sorted)
        before_group = (running[group_start] - submitted_sorted[group_start])[
            group_id
        ]
        ranks = running - submitted_sorted - before_group
        accepted_sorted = submitted_sorted & (ranks < capacity_sorted)
        accepted[order] = accepted_sorted
        # Element e = j*k + i, so reshaping to (d, k) puts sub-phases on axis
        # 0 and argmax finds each ball's first accepted sub-phase.
        by_col = accepted.reshape(d, k)
        updated = np.where(by_col.any(axis=0), by_col.argmax(axis=0), d)
        if np.array_equal(updated, first_accepted):
            break
        first_accepted = updated
    else:  # pragma: no cover - the induction argument above forbids this
        raise ProtocolError("parallel round commit failed to converge")

    # At the fixpoint each placed ball has exactly one accepted element (its
    # first accepted sub-phase); unplaced balls have none.
    loads += np.bincount(flat[accepted], minlength=n_bins)
    return first_accepted < d


@register_protocol
class ParallelGreedyProtocol(AllocationProtocol):
    """Parallel greedy allocation with a bounded number of rounds.

    Parameters
    ----------
    d:
        Number of candidate bins contacted per ball and per round.
    rounds:
        Number of synchronous rounds before the clean-up round.
    schedule:
        Per-round threshold schedule: ``"arithmetic"`` (default) uses
        ``ceil(m/n) + r`` in round ``r``, ``"geometric"`` uses
        ``ceil(m/n) · 2^r``.
    """

    name = "parallel-greedy"

    def __init__(
        self, d: int = 2, rounds: int = 3, schedule: str = "arithmetic"
    ) -> None:
        if d < 1:
            raise ConfigurationError(f"d must be at least 1, got {d}")
        if rounds < 1:
            raise ConfigurationError(f"rounds must be at least 1, got {rounds}")
        if schedule not in _SCHEDULES:
            raise ConfigurationError(
                f"schedule must be one of {_SCHEDULES}, got {schedule!r}"
            )
        self.d = int(d)
        self.rounds = int(rounds)
        self.schedule = schedule

    def params(self) -> dict[str, Any]:
        return {"d": self.d, "rounds": self.rounds, "schedule": self.schedule}

    def round_threshold(self, average: int, round_index: int) -> int:
        """Commit threshold used in round ``round_index`` (0-based)."""
        if self.schedule == "arithmetic":
            return average + round_index
        return max(average, 1) * (1 << round_index)

    def allocate(
        self,
        n_balls: int,
        n_bins: int,
        seed: SeedLike = None,
        *,
        probe_stream: ProbeStream | None = None,
        record_trace: bool = False,
    ) -> AllocationResult:
        self.validate_size(n_balls, n_bins)
        stream = probe_stream or RandomProbeStream(n_bins, seed)
        if stream.n_bins != n_bins:
            raise ConfigurationError(
                "probe_stream.n_bins does not match the requested n_bins"
            )

        loads = np.zeros(n_bins, dtype=np.int64)
        placed = np.zeros(n_balls, dtype=bool)
        costs = CostModel()
        probes = 0
        average = ceil_div(n_balls, n_bins) if n_balls else 0

        for round_index in range(self.rounds):
            unplaced = np.flatnonzero(~placed)
            if unplaced.size == 0:
                break
            threshold = self.round_threshold(average, round_index)
            candidates = stream.take_matrix(unplaced.size, self.d)
            probes += unplaced.size * self.d
            costs.add_round(messages=int(unplaced.size * self.d))
            # All d sub-phases of the round commit in one occurrence-rank
            # pass (single stable sort + linear fixpoint; see commit_round).
            placed[unplaced[commit_round(loads, candidates, threshold)]] = True

        # Clean-up round: any leftover ball takes one uniform choice.
        leftovers = np.flatnonzero(~placed)
        if leftovers.size:
            extra = stream.take(leftovers.size)
            probes += leftovers.size
            costs.add_round(messages=int(leftovers.size))
            np.add.at(loads, extra, 1)
            placed[leftovers] = True

        costs.add_probes(probes)
        return AllocationResult(
            protocol=self.name,
            n_balls=n_balls,
            n_bins=n_bins,
            loads=loads,
            allocation_time=probes,
            costs=costs,
            params=self.params(),
        )


def run_parallel_greedy(
    n_balls: int,
    n_bins: int,
    seed: SeedLike = None,
    *,
    d: int = 2,
    rounds: int = 3,
    schedule: str = "arithmetic",
) -> AllocationResult:
    """Functional one-liner for :class:`ParallelGreedyProtocol`."""
    return ParallelGreedyProtocol(d=d, rounds=rounds, schedule=schedule).allocate(
        n_balls, n_bins, seed
    )
