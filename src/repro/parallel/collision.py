"""Collision-based parallel allocation (in the spirit of Lenzen–Wattenhofer).

The related-work section of the paper highlights the parallel setting, where
all ``m = Θ(n)`` balls are allocated simultaneously over a small number of
synchronous rounds.  Lenzen and Wattenhofer give a symmetric adaptive
protocol achieving a maximum load of 2 within ``log* n + O(1)`` rounds and
``O(n)`` messages; unallocated balls contact ``k_i`` bins in round ``i`` for
increasing ``k_i``, and a bin with fewer than 2 balls accepts one random
requester.

This module implements that scheme on top of the
:class:`~repro.runtime.engine.SynchronousEngine` message-passing substrate:

* round ``i``: every unplaced ball sends ``request`` messages to
  ``fanout_base · growth^i`` bins chosen uniformly at random (capped at
  ``max_fanout``);
* every bin with remaining capacity picks up to its free capacity of the
  requesters uniformly at random and replies ``accept``;
* a ball accepting several offers keeps the first and the surplus capacity is
  simply unused for this round (matching the "bins accept a randomly chosen
  ball" rule).

The protocol reports messages and rounds through the shared
:class:`~repro.runtime.costs.CostModel` and the number of bin *requests* as
its allocation time, making it directly comparable to the sequential
protocols in Table 1.
"""

from __future__ import annotations

from typing import Any, Mapping, Sequence

import numpy as np

from repro.core.protocol import AllocationProtocol, register_protocol
from repro.core.result import AllocationResult
from repro.errors import ConfigurationError
from repro.runtime.engine import Message, SynchronousEngine
from repro.runtime.probes import ProbeStream
from repro.runtime.rng import SeedLike, as_generator

__all__ = ["CollisionProtocol", "run_collision"]


@register_protocol
class CollisionProtocol(AllocationProtocol):
    """Round-based collision protocol for parallel balls-into-bins.

    Parameters
    ----------
    capacity:
        Maximum number of balls a bin accepts over the whole run (2 in
        Lenzen–Wattenhofer; must satisfy ``capacity * n_bins >= n_balls``).
    fanout_base, growth:
        Round ``i`` (0-based) lets every unplaced ball contact
        ``min(fanout_base * growth**i, max_fanout)`` bins.
    max_fanout:
        Cap on the per-ball fanout (the original protocol accesses at most
        ``O(log n)`` bins per ball).
    max_rounds:
        Safety cap on the number of rounds.
    """

    name = "parallel-collision"

    def __init__(
        self,
        capacity: int = 2,
        fanout_base: int = 1,
        growth: float = 2.0,
        max_fanout: int = 64,
        max_rounds: int = 200,
    ) -> None:
        if capacity < 1:
            raise ConfigurationError(f"capacity must be at least 1, got {capacity}")
        if fanout_base < 1:
            raise ConfigurationError(f"fanout_base must be >= 1, got {fanout_base}")
        if growth < 1.0:
            raise ConfigurationError(f"growth must be >= 1, got {growth}")
        if max_fanout < fanout_base:
            raise ConfigurationError("max_fanout must be >= fanout_base")
        if max_rounds < 1:
            raise ConfigurationError(f"max_rounds must be positive, got {max_rounds}")
        self.capacity = int(capacity)
        self.fanout_base = int(fanout_base)
        self.growth = float(growth)
        self.max_fanout = int(max_fanout)
        self.max_rounds = int(max_rounds)

    def params(self) -> dict[str, Any]:
        return {
            "capacity": self.capacity,
            "fanout_base": self.fanout_base,
            "growth": self.growth,
            "max_fanout": self.max_fanout,
        }

    def _fanout(self, round_index: int) -> int:
        return int(min(self.fanout_base * self.growth**round_index, self.max_fanout))

    def allocate(
        self,
        n_balls: int,
        n_bins: int,
        seed: SeedLike = None,
        *,
        probe_stream: ProbeStream | None = None,
        record_trace: bool = False,
    ) -> AllocationResult:
        self.validate_size(n_balls, n_bins)
        if probe_stream is not None:
            raise ConfigurationError(
                "the parallel collision protocol draws per-round batches and "
                "cannot replay a sequential probe stream"
            )
        if n_balls > self.capacity * n_bins:
            raise ConfigurationError(
                f"{n_balls} balls cannot fit into {n_bins} bins of capacity "
                f"{self.capacity}"
            )

        loads = np.zeros(n_bins, dtype=np.int64)
        assignment = np.full(n_balls, -1, dtype=np.int64)
        probes = 0

        def ball_step(
            round_index: int,
            replies: Mapping[int, Sequence[Message]],
            rng: np.random.Generator,
        ) -> list[Message]:
            nonlocal probes
            # Process last round's accept offers first: a ball keeps the first
            # offer it sees and informs no one (unused capacity is recovered
            # because bins only count confirmed placements below).
            for ball, offers in replies.items():
                if assignment[ball] >= 0:
                    continue
                accepted_bin = offers[0].sender
                assignment[ball] = accepted_bin
                loads[accepted_bin] += 1
            unplaced = np.flatnonzero(assignment < 0)
            if unplaced.size == 0:
                return []
            fanout = self._fanout(round_index)
            targets = rng.integers(0, n_bins, size=(unplaced.size, fanout))
            probes += int(unplaced.size * fanout)
            requests = [
                Message(sender=int(ball), receiver=int(bin_), payload="request")
                for ball, row in zip(unplaced, targets)
                for bin_ in row
            ]
            return requests

        def bin_step(
            round_index: int,
            requests: Mapping[int, Sequence[Message]],
            rng: np.random.Generator,
        ) -> list[Message]:
            replies: list[Message] = []
            for bin_index, incoming in requests.items():
                free = self.capacity - int(loads[bin_index])
                if free <= 0 or not incoming:
                    continue
                # Accept at most ONE requester per round (the LW rule); a bin
                # with capacity left may accept again in a later round.
                senders = list({msg.sender for msg in incoming})
                chosen = senders[int(rng.integers(0, len(senders)))]
                replies.append(
                    Message(sender=bin_index, receiver=chosen, payload="accept")
                )
            return replies

        def stop(round_index: int) -> bool:
            return bool(np.all(assignment >= 0))

        # The stop condition only observes placements performed at the start
        # of the *next* ball step, so run the engine until the ball step has
        # had a chance to absorb the final round of offers: we wrap the stop
        # condition to also absorb pending offers.  Simpler: the engine stops
        # when every ball is assigned; the final accept offers are absorbed by
        # one extra drain round below.
        engine = SynchronousEngine(
            n_balls,
            n_bins,
            ball_step,
            bin_step,
            stop,
            max_rounds=self.max_rounds,
            seed=seed,
        )
        if n_balls:
            engine.run()
            # Drain: absorb accept offers from the final round (ball_step of a
            # virtual extra round); no new requests are generated because all
            # remaining offers cover the still-unplaced balls.
            while np.any(assignment < 0):  # pragma: no cover - defensive
                last = engine.history[-1]
                pending: dict[int, list[Message]] = {}
                for msg in last.replies:
                    pending.setdefault(msg.receiver, []).append(msg)
                before = int(np.sum(assignment < 0))
                ball_step(len(engine.history), pending, as_generator(seed))
                if int(np.sum(assignment < 0)) == before:
                    raise ConfigurationError(
                        "collision protocol failed to place every ball; "
                        "increase max_rounds or capacity"
                    )

        costs = engine.costs
        costs.add_probes(probes)
        return AllocationResult(
            protocol=self.name,
            n_balls=n_balls,
            n_bins=n_bins,
            loads=loads,
            allocation_time=probes,
            costs=costs,
            params=self.params(),
        )


def run_collision(
    n_balls: int, n_bins: int, seed: SeedLike = None, *, capacity: int = 2
) -> AllocationResult:
    """Functional one-liner for :class:`CollisionProtocol`."""
    return CollisionProtocol(capacity=capacity).allocate(n_balls, n_bins, seed)
