"""repro — reproduction of *Balls-into-Bins with Nearly Optimal Load Distribution*.

Berenbrink, Khodamoradi, Sauerwald, Stauffer — SPAA 2013.

The package is organised as follows:

* :mod:`repro.api` — the unified spec-driven entry point: declarative
  :class:`SimulationSpec`/:class:`DispatchSpec` documents, streaming
  :class:`Simulation` sessions and the :func:`simulate` facade.
* :mod:`repro.core` — the paper's ADAPTIVE and THRESHOLD protocols, the
  smoothness potentials and the protocol registry.
* :mod:`repro.baselines` — every comparison protocol of Table 1
  (single-choice, greedy[d], left[d], (d,k)-memory, rebalancing).
* :mod:`repro.runtime` — probe streams, seeding, cost accounting and the
  round-based message engine.
* :mod:`repro.parallel` — parallel balls-into-bins protocols (related work
  substrate).
* :mod:`repro.theory` — closed-form bounds and concentration inequalities.
* :mod:`repro.stats` — trial summaries and empirical distribution tools.
* :mod:`repro.hashing` / :mod:`repro.scheduler` — the hashing and
  load-balancing applications that motivate the paper.
* :mod:`repro.experiments` — the Table 1 / Figure 3 / smoothness experiment
  harness (spec-driven, with a ``repro-experiment`` CLI).
* :mod:`repro.reporting` — markdown/CSV tables and ASCII plots.

Quickstart
----------
Describe a run declaratively and simulate it — every protocol of the paper
(and of Table 1) is addressed by its registry name, and every result is a
:class:`RunResult`:

>>> from repro import SimulationSpec, simulate
>>> spec = SimulationSpec("adaptive", n_balls=100_000, n_bins=10_000, seed=1)
>>> result = simulate(spec)
>>> result.max_load <= 11
True
>>> simulate(spec.with_seed(2)).protocol
'adaptive'

Specs round-trip losslessly through JSON (log them, hash them, ship them to
workers), and :class:`Simulation` streams a run in chunks so loads, probe
counts and smoothness potentials can be inspected mid-flight:

>>> from repro import Simulation, SimulationSpec
>>> sim = Simulation(SimulationSpec("threshold", n_balls=50_000, n_bins=5_000, seed=3))
>>> state = sim.step(25_000)          # place the first half
>>> state.placed, state.probes > 0
(25000, True)
>>> final = sim.results()             # bit-identical to a one-shot run
>>> final.max_load <= 11
True

The scheduler speaks the same language — a :class:`DispatchSpec` plus a
:class:`WorkloadSpec` runs the batched dispatcher over a named workload:

>>> from repro import DispatchSpec, WorkloadSpec, simulate
>>> outcome = simulate(DispatchSpec("weighted", n_servers=100, seed=4,
...     workload=WorkloadSpec("heavy-tailed", n_jobs=10_000, seed=5)))
>>> outcome.metrics.makespan >= outcome.metrics.avg_work
True

The legacy free functions (``run_adaptive``/``run_threshold``) keep working
but are deprecated in favour of :func:`simulate`; they emit one
:class:`DeprecationWarning` per process.
"""

from repro._compat import deprecated_names
from repro._version import __version__
from repro.api import (
    DispatchSpec,
    Simulation,
    SimulationSpec,
    SimulationState,
    WorkloadSpec,
    simulate,
    spec_from_dict,
    spec_from_json,
)
from repro.core import (
    AdaptiveProtocol,
    AllocationProtocol,
    AllocationResult,
    RunResult,
    ThresholdProtocol,
    active_backend,
    available_backends,
    available_protocols,
    exponential_potential,
    get_protocol,
    load_gap,
    make_protocol,
    max_final_load,
    quadratic_potential,
    use_backend,
)
from repro.core import adaptive as _adaptive_module
from repro.core import threshold as _threshold_module
from repro.errors import (
    CapacityExceededError,
    ConfigurationError,
    ExperimentError,
    ProtocolError,
    ReproError,
)

# Importing the baselines and parallel protocols registers them with the
# protocol registry so that `make_protocol("greedy", d=2)`,
# `make_protocol("parallel-collision")` and the experiment harness work out of
# the box.
from repro import baselines as _baselines  # noqa: F401  (import for side effect)
from repro import parallel as _parallel  # noqa: F401  (import for side effect)

__all__ = [
    "__version__",
    # Spec-driven facade (the documented quickstart path).
    "SimulationSpec",
    "DispatchSpec",
    "WorkloadSpec",
    "Simulation",
    "SimulationState",
    "simulate",
    "spec_from_dict",
    "spec_from_json",
    # Core protocol surface.
    "AdaptiveProtocol",
    "ThresholdProtocol",
    "AllocationProtocol",
    "RunResult",
    "AllocationResult",
    "available_protocols",
    "get_protocol",
    "make_protocol",
    "run_adaptive",
    "run_threshold",
    "max_final_load",
    "quadratic_potential",
    "exponential_potential",
    "load_gap",
    # Kernel backends (execution strategy; results are backend-independent).
    "use_backend",
    "active_backend",
    "available_backends",
    # Errors.
    "ReproError",
    "ConfigurationError",
    "ProtocolError",
    "CapacityExceededError",
    "ExperimentError",
]

# Deprecated free-function entry points: served lazily so that touching them
# emits a single DeprecationWarning per process (the functions themselves are
# unchanged — `repro.core.adaptive.run_adaptive` stays warning-free for
# internal use and the reference/equivalence test-suite).
__getattr__ = deprecated_names(
    __name__,
    {
        "run_adaptive": (
            "repro.simulate(SimulationSpec('adaptive', ...))",
            lambda: _adaptive_module.run_adaptive,
        ),
        "run_threshold": (
            "repro.simulate(SimulationSpec('threshold', ...))",
            lambda: _threshold_module.run_threshold,
        ),
    },
)
