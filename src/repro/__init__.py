"""repro — reproduction of *Balls-into-Bins with Nearly Optimal Load Distribution*.

Berenbrink, Khodamoradi, Sauerwald, Stauffer — SPAA 2013.

The package is organised as follows:

* :mod:`repro.core` — the paper's ADAPTIVE and THRESHOLD protocols, the
  smoothness potentials and the protocol registry.
* :mod:`repro.baselines` — every comparison protocol of Table 1
  (single-choice, greedy[d], left[d], (d,k)-memory, rebalancing).
* :mod:`repro.runtime` — probe streams, seeding, cost accounting and the
  round-based message engine.
* :mod:`repro.parallel` — parallel balls-into-bins protocols (related work
  substrate).
* :mod:`repro.theory` — closed-form bounds and concentration inequalities.
* :mod:`repro.stats` — trial summaries and empirical distribution tools.
* :mod:`repro.hashing` / :mod:`repro.scheduler` — the hashing and
  load-balancing applications that motivate the paper.
* :mod:`repro.experiments` — the Table 1 / Figure 3 / smoothness experiment
  harness.
* :mod:`repro.reporting` — markdown/CSV tables and ASCII plots.

Quickstart
----------
>>> from repro import run_adaptive, run_threshold
>>> adaptive = run_adaptive(n_balls=100_000, n_bins=10_000, seed=1)
>>> threshold = run_threshold(n_balls=100_000, n_bins=10_000, seed=1)
>>> adaptive.max_load <= 11 and threshold.max_load <= 11
True
>>> adaptive.quadratic_potential() < threshold.quadratic_potential()
True
"""

from repro._version import __version__
from repro.core import (
    AdaptiveProtocol,
    AllocationProtocol,
    AllocationResult,
    ThresholdProtocol,
    available_protocols,
    exponential_potential,
    get_protocol,
    load_gap,
    make_protocol,
    max_final_load,
    quadratic_potential,
    run_adaptive,
    run_threshold,
)
from repro.errors import (
    CapacityExceededError,
    ConfigurationError,
    ExperimentError,
    ProtocolError,
    ReproError,
)

# Importing the baselines and parallel protocols registers them with the
# protocol registry so that `make_protocol("greedy", d=2)`,
# `make_protocol("parallel-collision")` and the experiment harness work out of
# the box.
from repro import baselines as _baselines  # noqa: F401  (import for side effect)
from repro import parallel as _parallel  # noqa: F401  (import for side effect)

__all__ = [
    "__version__",
    "AdaptiveProtocol",
    "ThresholdProtocol",
    "AllocationProtocol",
    "AllocationResult",
    "available_protocols",
    "get_protocol",
    "make_protocol",
    "run_adaptive",
    "run_threshold",
    "max_final_load",
    "quadratic_potential",
    "exponential_potential",
    "load_gap",
    "ReproError",
    "ConfigurationError",
    "ProtocolError",
    "CapacityExceededError",
    "ExperimentError",
]
