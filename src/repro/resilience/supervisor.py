"""Supervised crash recovery for the live dispatch service.

:class:`ServiceSupervisor` keeps one :class:`~repro.service.DispatchService`
alive across crashes: it starts the service on a
:class:`~repro.service.ServiceThread`, arranges automatic checkpoints on a
configurable interval (riding the service's own quiesce-between-micro-batches
checkpoint path), and watches the thread from a monitor.  When the service
dies — a hard :meth:`~repro.service.ServiceThread.kill`, an unhandled loop
error, anything that ends the thread without the supervisor's consent — the
monitor restarts it from the **latest checkpoint**, falling back to the
rotated ``<path>.prev`` snapshot when the latest is torn
(:class:`~repro.errors.CheckpointError`), and to a cold start from the
dispatcher factory when no usable snapshot exists at all.

The restore is the same bit-identical resume the checkpoint tests certify:
the restarted dispatcher continues the probe stream exactly where the
snapshot left it, and the restored request log keeps replayed client
submits from dispatching twice.  A restarted service binds a fresh
ephemeral port, so clients reach it through
:meth:`ServiceSupervisor.client`, whose ``address_provider`` re-resolves
the supervisor's current address on every reconnect.

Restarts are bounded by ``max_restarts``; beyond it the supervisor gives
up (``failed`` is set, :meth:`wait_for_restart` raises) rather than
flap-looping on a service that dies faster than it recovers.
"""

from __future__ import annotations

import os
import threading
from typing import Any, Callable

from repro.errors import CheckpointError, ConfigurationError
from repro.scheduler.dispatcher import Dispatcher
from repro.service.server import DispatchService, ServiceClient, ServiceThread

__all__ = ["ServiceSupervisor"]


class ServiceSupervisor:
    """Keep a dispatch service running: auto-checkpoint, watch, restart.

    Parameters
    ----------
    dispatcher_factory:
        Zero-argument callable returning a fresh
        :class:`~repro.scheduler.Dispatcher` — the cold-start (and
        no-usable-snapshot fallback) configuration.
    checkpoint_path:
        Where snapshots live.  Required: supervision without a checkpoint
        would restart from nothing and silently rewind the stream.
    checkpoint_interval:
        Seconds between automatic checkpoints (``None`` checkpoints only
        when a client asks — crash recovery then rewinds to that point).
    max_restarts:
        Restarts allowed before the supervisor gives up.
    host, port:
        Bind address for each incarnation (``port=0`` = ephemeral, the
        default; each restart may land on a new port — use
        :meth:`client`).
    poll_interval:
        Monitor polling period for thread liveness.
    service_kwargs:
        Extra keyword arguments for every :class:`DispatchService`
        incarnation (queue bound, overflow policy, ...).
    """

    def __init__(
        self,
        dispatcher_factory: Callable[[], Dispatcher],
        *,
        checkpoint_path: str,
        checkpoint_interval: float | None = None,
        max_restarts: int = 5,
        host: str = "127.0.0.1",
        port: int = 0,
        poll_interval: float = 0.05,
        service_kwargs: dict[str, Any] | None = None,
    ) -> None:
        if checkpoint_path is None:
            raise ConfigurationError(
                "supervision needs a checkpoint_path to restart from"
            )
        if max_restarts < 0:
            raise ConfigurationError(
                f"max_restarts must be >= 0, got {max_restarts}"
            )
        if poll_interval <= 0:
            raise ConfigurationError(
                f"poll_interval must be positive, got {poll_interval}"
            )
        self.dispatcher_factory = dispatcher_factory
        self.checkpoint_path = checkpoint_path
        self.checkpoint_interval = checkpoint_interval
        self.max_restarts = int(max_restarts)
        self._host = host
        self._port = port
        self._poll_interval = float(poll_interval)
        self._service_kwargs = dict(service_kwargs or {})
        self.restarts = 0
        #: How each incarnation was built: "cold", "checkpoint", or "prev".
        self.restore_sources: list[str] = []
        self.failed = threading.Event()
        self._lock = threading.Lock()
        self._restarted = threading.Condition(self._lock)
        self._stopping = False
        self._thread: ServiceThread | None = None
        self._monitor: threading.Thread | None = None

    # ------------------------------------------------------------------ #
    @property
    def address(self) -> tuple[str, int] | None:
        """The current incarnation's ``(host, port)`` (changes on restart)."""
        thread = self._thread
        return None if thread is None else thread.address

    @property
    def service(self) -> DispatchService | None:
        """The current incarnation's service object."""
        thread = self._thread
        return None if thread is None else thread.service

    def client(self, timeout: float | None = 30.0, retries: int = 8) -> ServiceClient:
        """A retrying client that follows this supervisor across restarts.

        The client's ``address_provider`` re-reads :attr:`address` on every
        reconnect, so it finds the restarted service on its new ephemeral
        port and replays unacknowledged submits against the restored
        request log.
        """
        host, port = self.address
        return ServiceClient(
            host,
            port,
            timeout=timeout,
            retries=retries,
            address_provider=lambda: self.address,
        )

    # ------------------------------------------------------------------ #
    def _build_service(self) -> DispatchService:
        """Latest snapshot, else the ``.prev`` rotation, else a cold start."""
        kwargs = dict(
            self._service_kwargs,
            checkpoint_path=self.checkpoint_path,
            checkpoint_interval=self.checkpoint_interval,
        )
        candidates = [
            (self.checkpoint_path, "checkpoint"),
            (f"{self.checkpoint_path}.prev", "prev"),
        ]
        for path, source in candidates:
            if not os.path.exists(path):
                continue
            try:
                service = DispatchService.from_checkpoint(path, **kwargs)
            except CheckpointError:
                continue
            # Even when restoring from .prev, keep checkpointing to the
            # primary path (from_checkpoint defaulted it to `path`).
            service.checkpoint_path = self.checkpoint_path
            self.restore_sources.append(source)
            return service
        self.restore_sources.append("cold")
        return DispatchService(self.dispatcher_factory(), **kwargs)

    def _spawn(self) -> None:
        self._thread = ServiceThread(self._build_service(), self._host, self._port)

    def start(self) -> "ServiceSupervisor":
        """Start (or resume from the latest snapshot) and begin watching."""
        with self._lock:
            if self._thread is not None:
                raise ConfigurationError("supervisor is already running")
            self._stopping = False
            self._spawn()
        self._monitor = threading.Thread(
            target=self._watch, name="repro-supervisor", daemon=True
        )
        self._monitor.start()
        return self

    def _watch(self) -> None:
        while True:
            thread = self._thread
            if self._stopping or thread is None:
                return
            thread.join(self._poll_interval)
            if not thread.is_alive():
                with self._lock:
                    if self._stopping:
                        return
                    if self.restarts >= self.max_restarts:
                        self.failed.set()
                        self._restarted.notify_all()
                        return
                    self.restarts += 1
                    self._spawn()
                    self._restarted.notify_all()

    def wait_for_restart(self, restarts_seen: int, timeout: float = 30.0) -> int:
        """Block until the restart counter exceeds ``restarts_seen``.

        Returns the new counter value; raises if the supervisor gave up
        (``max_restarts`` exhausted) or the timeout expires.
        """
        with self._restarted:
            ok = self._restarted.wait_for(
                lambda: self.restarts > restarts_seen or self.failed.is_set(),
                timeout=timeout,
            )
        if self.failed.is_set():
            raise ConfigurationError(
                f"service exceeded max_restarts={self.max_restarts}; "
                f"supervisor gave up"
            )
        if not ok:
            raise TimeoutError(
                f"no restart within {timeout:g}s (counter still {self.restarts})"
            )
        return self.restarts

    # ------------------------------------------------------------------ #
    def stop(self, timeout: float = 30.0) -> None:
        """Graceful stop: final checkpoint via the service, then shut down."""
        with self._lock:
            self._stopping = True
            thread = self._thread
            self._thread = None
        if thread is not None:
            thread.graceful_stop(timeout)
        if self._monitor is not None:
            self._monitor.join(timeout)
            self._monitor = None

    def __enter__(self) -> "ServiceSupervisor":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()
