"""Deterministic fault injection and supervised crash recovery.

The :mod:`repro.resilience` package is the layer that makes every failure
mode of the distributed stack *injectable, detectable and recoverable*:

* :mod:`~repro.resilience.faults` — a seeded PCG64 fault schedule
  (:class:`FaultPlan` probabilities, :class:`FaultSchedule` streams), so
  every chaos run is replayable from its seed;
* :mod:`~repro.resilience.chaos` — :class:`ChaosTransport`, which wraps any
  cluster :class:`~repro.cluster.transport.Transport` and injects frame
  drops, delays, duplications, torn frames, worker hangs and worker kills
  on the coordinator↔worker path, and :class:`ChaosConnection`, the same
  idea for the service's client framing;
* :mod:`~repro.resilience.supervisor` — :class:`ServiceSupervisor`, which
  auto-checkpoints a live :class:`~repro.service.DispatchService` on an
  interval and restarts a crashed service from its latest good checkpoint
  (falling back to the rotated previous snapshot when the latest is torn).

The acceptance bar throughout is the one PRs 8–9 set for kill/restore:
recovery must be *bit-identical* — a cluster sweep under a seeded chaos
schedule produces exactly the fault-free row multiset, and a supervised
service resumes the interrupted job stream exactly where the checkpoint
left it.  Detection closes the one hole retry alone cannot: a merely
*hung* worker (no frames, no EOF) is converted into
:class:`~repro.cluster.transport.WorkerLost` by the coordinator's
per-shard deadline + heartbeat machinery (see
:class:`~repro.cluster.coordinator.ClusterCoordinator`).
"""

from repro.resilience.chaos import ChaosConnection, ChaosTransport, ChaosWorkerHandle
from repro.resilience.faults import Fault, FaultPlan, FaultSchedule
from repro.resilience.supervisor import ServiceSupervisor

__all__ = [
    "Fault",
    "FaultPlan",
    "FaultSchedule",
    "ChaosConnection",
    "ChaosTransport",
    "ChaosWorkerHandle",
    "ServiceSupervisor",
]
