"""Chaos wrappers: inject scheduled faults into transports and connections.

:class:`ChaosTransport` wraps any cluster
:class:`~repro.cluster.transport.Transport`; every spawned worker handle is
wrapped in a :class:`ChaosWorkerHandle` that consults its own deterministic
:class:`~repro.resilience.faults.FaultSchedule` stream before each send and
receive.  The injected faults map onto the real failure modes the
coordinator must absorb:

===============  ==========================================================
fault            observable effect
===============  ==========================================================
``drop``         the frame is silently lost — no reply, no EOF; only the
                 coordinator's shard deadline can recover
``delay``        the frame is delivered late (exercises reordering windows)
``duplicate``    a send is delivered twice / a received reply is delivered
                 again (exercises shard-id dedup)
``truncate``     the stream tears mid-frame: the worker is killed so the
                 next read sees a torn/absent frame → ``WorkerLost``
``hang``         the link blocks for ``hang_seconds`` delivering nothing —
                 a *hung* worker, invisible to EOF-based detection
``kill``         the worker process is hard-killed (the PR-8 fault, now
                 schedulable)
===============  ==========================================================

A chaos sweep therefore **requires** a ``shard_deadline`` on the
coordinator whenever ``drop``/``hang`` probabilities are non-zero: those
faults produce no EOF, and only the deadline converts them into
:class:`~repro.cluster.transport.WorkerLost`.

:class:`ChaosConnection` applies the same scheduled faults to the service's
blocking client framing (drop/truncate sever the connection, duplicate
resends the frame), which is what the retrying
:class:`~repro.service.ServiceClient` is certified against.

Every injected fault is appended to the owning wrapper's ``fault_log`` as
``(scope, incarnation, operation, kind)`` so tests can assert that a given
seed really exercised (say) at least one hang and one duplication.
"""

from __future__ import annotations

import threading
import time
from typing import Any

from repro.cluster.transport import WorkerLost, check_transport
from repro.errors import ConfigurationError
from repro.resilience.faults import FaultSchedule
from repro.service.framing import FrameConnection

__all__ = ["ChaosTransport", "ChaosWorkerHandle", "ChaosConnection"]


class ChaosWorkerHandle:
    """A worker handle that injects scheduled faults around a real one.

    The ``stop`` sentinel is exempt from injection — teardown is not part
    of the failure model, and faulting it would only slow test shutdown.
    """

    def __init__(
        self,
        inner: Any,
        stream,
        log: list[tuple[int, int, str, str]],
        incarnation: int,
    ) -> None:
        self._inner = inner
        self._stream = stream
        self._log = log
        self._incarnation = incarnation
        self._log_lock = threading.Lock()
        self._dup_pending: list[dict[str, Any]] = []

    # ------------------------------------------------------------------ #
    @property
    def worker_id(self) -> int:
        return self._inner.worker_id

    @property
    def pid(self) -> int | None:
        return self._inner.pid

    def _record(self, operation: str, kind: str) -> None:
        with self._log_lock:
            self._log.append(
                (self._inner.worker_id, self._incarnation, operation, kind)
            )

    def _sever(self) -> None:
        """Kill the inner worker so the stream ends without a valid frame."""
        try:
            self._inner.kill()
        except Exception:  # pragma: no cover - already dead
            pass

    # ------------------------------------------------------------------ #
    def send(self, message: dict[str, Any]) -> None:
        if message.get("type") == "stop":
            self._inner.send(message)
            return
        fault = self._stream.next_fault()
        if fault is None:
            self._inner.send(message)
            return
        self._record("send", fault.kind)
        if fault.kind == "drop":
            return  # the frame evaporates: no delivery, no error, no EOF
        if fault.kind == "delay":
            time.sleep(fault.seconds)
            self._inner.send(message)
            return
        if fault.kind == "duplicate":
            self._inner.send(message)
            try:
                self._inner.send(message)
            except WorkerLost:  # pragma: no cover - died between the two
                pass
            return
        if fault.kind in ("truncate", "kill"):
            # Torn frame ≡ hard kill from the coordinator's point of view:
            # the stream ends before a complete frame, so the *next read*
            # raises WorkerLost (a pipe send to a fresh corpse may still
            # succeed into the buffer — that asymmetry is real).
            self._sever()
            try:
                self._inner.send(message)
            except WorkerLost:
                pass
            return
        if fault.kind == "hang":
            time.sleep(fault.seconds)
            self._inner.send(message)
            return
        raise ConfigurationError(  # pragma: no cover - FAULT_KINDS is closed
            f"unknown fault kind {fault.kind!r}"
        )

    def recv(self) -> dict[str, Any]:
        if self._dup_pending:
            return dict(self._dup_pending.pop(0))
        fault = self._stream.next_fault()
        if fault is not None:
            self._record("recv", fault.kind)
            if fault.kind == "drop":
                self._inner.recv()  # the delivered frame evaporates
                return self._inner.recv()
            if fault.kind == "delay":
                time.sleep(fault.seconds)
            elif fault.kind == "hang":
                # The worker (or the link) wedges: nothing is delivered for
                # hang_seconds.  If the coordinator's deadline killed the
                # worker meanwhile, the recv below raises WorkerLost.
                time.sleep(fault.seconds)
            elif fault.kind in ("truncate", "kill"):
                self._sever()
            elif fault.kind == "duplicate":
                reply = self._inner.recv()
                if reply.get("type") == "result":
                    self._dup_pending.append(dict(reply))
                return reply
        return self._inner.recv()

    def close(self) -> None:
        self._inner.close()

    def kill(self) -> None:
        self._inner.kill()


class ChaosTransport:
    """Wrap a cluster transport so every handle injects scheduled faults.

    Parameters
    ----------
    inner:
        The real :class:`~repro.cluster.transport.Transport` (defaults to a
        fresh :class:`~repro.cluster.transport.MultiprocessingTransport`).
    schedule:
        The seeded :class:`~repro.resilience.faults.FaultSchedule`.  Each
        ``(worker_id, incarnation)`` gets its own child decision stream, so
        the run is replayable from the schedule's seed alone.

    Attributes
    ----------
    fault_log:
        Every injected fault, as ``(worker_id, incarnation, op, kind)``.
    """

    def __init__(self, schedule: FaultSchedule, inner: Any | None = None) -> None:
        if not isinstance(schedule, FaultSchedule):
            raise ConfigurationError(
                f"schedule must be a FaultSchedule, got {type(schedule).__name__}"
            )
        if inner is None:
            from repro.cluster.transport import MultiprocessingTransport

            inner = MultiprocessingTransport()
        self._inner = check_transport(inner)
        self.schedule = schedule
        self.fault_log: list[tuple[int, int, str, str]] = []
        self._incarnations: dict[int, int] = {}
        self._spawn_lock = threading.Lock()

    def spawn(self, worker_id: int) -> ChaosWorkerHandle:
        handle = self._inner.spawn(worker_id)
        with self._spawn_lock:
            incarnation = self._incarnations.get(worker_id, 0)
            self._incarnations[worker_id] = incarnation + 1
        return ChaosWorkerHandle(
            handle,
            self.schedule.stream(worker_id, incarnation),
            self.fault_log,
            incarnation,
        )

    def shutdown(self) -> None:
        self._inner.shutdown()

    # ------------------------------------------------------------------ #
    def fault_counts(self) -> dict[str, int]:
        """Injected faults tallied by kind (assertion/reporting helper)."""
        counts: dict[str, int] = {}
        for _, _, _, kind in self.fault_log:
            counts[kind] = counts.get(kind, 0) + 1
        return counts


class ChaosConnection(FrameConnection):
    """A service frame connection that injects scheduled faults on send.

    The client-side mirror of :class:`ChaosWorkerHandle`, used to certify
    the retrying :class:`~repro.service.ServiceClient`: a dropped or torn
    frame severs the connection (the client must reconnect and replay its
    unacknowledged submits by request id), a duplicated frame reaches the
    server twice (the server must dedup by request id), a delayed frame is
    just late.  ``hang`` and ``kill`` degrade to ``drop`` here — there is
    no separate process to kill on a client socket.

    Every injected fault lands in ``fault_log`` as ``(op, kind)``.
    """

    def __init__(self, sock, stream) -> None:
        super().__init__(sock)
        self._stream = stream
        self.fault_log: list[tuple[str, str]] = []

    def send(self, message: dict[str, Any]) -> None:
        fault = self._stream.next_fault()
        if fault is None:
            super().send(message)
            return
        self.fault_log.append(("send", fault.kind))
        if fault.kind == "delay":
            time.sleep(fault.seconds)
            super().send(message)
            return
        if fault.kind == "duplicate":
            super().send(message)
            super().send(message)
            return
        if fault.kind == "truncate":
            # Write a torn prefix so the server sees a mid-frame EOF, then
            # sever: neither side can use this connection again.
            from repro.service.framing import encode_frame

            data = encode_frame(message)
            try:
                self._sock.sendall(data[: max(1, len(data) // 2)])
            except OSError:  # pragma: no cover - already severed
                pass
            self.close()
            raise ConnectionError("chaos: connection torn mid-frame")
        # drop / hang / kill: the frame never leaves — sever the connection
        # so the client's recv fails fast instead of waiting on a timeout.
        self.close()
        raise ConnectionError(f"chaos: frame dropped ({fault.kind})")
