"""Seeded, replayable fault schedules for chaos testing.

A chaos run must be *deterministic*: the same seed has to produce the same
sequence of injected faults so that a red CI run can be replayed locally
from its logged seed.  The machinery here is therefore just a PCG64 stream
(the same generator family the simulation engines use) turned into a
sequence of fault decisions:

* :class:`FaultPlan` — the per-operation probabilities of each fault kind
  (drop, delay, duplicate, truncate, hang, kill) plus their magnitudes;
* :class:`FaultSchedule` — the seeded source; :meth:`FaultSchedule.stream`
  derives an independent child stream per ``(worker, incarnation)`` so the
  decision sequence each wrapped handle sees is a pure function of the
  seed, *not* of thread interleaving;
* :class:`Fault` — one decision (kind + magnitude).

Determinism caveat: the schedule pins *which* operations fault, not the
wall-clock order in which concurrently-driven workers execute — the
certified invariant (see ``tests/test_resilience.py``) is that the row
multiset is bit-identical regardless, which is exactly the coordinator's
recovery contract.
"""

from __future__ import annotations

from dataclasses import dataclass, fields
from typing import Iterable

import numpy as np

from repro.errors import ConfigurationError

__all__ = ["Fault", "FaultPlan", "FaultSchedule", "FAULT_KINDS"]

#: Every injectable fault kind, in the (stable) order the roll consults them.
FAULT_KINDS = ("drop", "delay", "duplicate", "truncate", "hang", "kill")


@dataclass(frozen=True)
class Fault:
    """One injected fault decision.

    ``kind`` is one of :data:`FAULT_KINDS`; ``seconds`` carries the
    magnitude for the timed kinds (``delay`` and ``hang``) and is ``0.0``
    otherwise.
    """

    kind: str
    seconds: float = 0.0


@dataclass(frozen=True)
class FaultPlan:
    """Per-operation fault probabilities (and magnitudes) for a chaos run.

    Each transport operation (a send or a receive) rolls one uniform draw
    and maps it onto at most one fault via the cumulative probabilities, so
    the kinds are mutually exclusive per operation and their rates are
    exactly the configured values.

    Parameters
    ----------
    drop:
        Probability a frame is silently lost (a dropped send never reaches
        the worker; a dropped receive discards one delivered reply).  Only
        a shard deadline can recover from a drop — there is no EOF.
    delay:
        Probability a frame is delayed by a uniform draw from
        ``delay_range`` seconds.
    duplicate:
        Probability a delivered reply is delivered *again* on the next
        receive (exercising the coordinator's shard-id dedup).
    truncate:
        Probability the connection is torn mid-frame: the peer is killed so
        the stream ends without a complete frame, surfacing as
        :class:`~repro.cluster.transport.WorkerLost`.
    hang:
        Probability the worker (or its link) hangs: the receive blocks for
        ``hang_seconds`` delivering nothing — past any shard deadline.
    kill:
        Probability the worker process is hard-killed before the operation.
    """

    drop: float = 0.0
    delay: float = 0.0
    duplicate: float = 0.0
    truncate: float = 0.0
    hang: float = 0.0
    kill: float = 0.0
    delay_range: tuple[float, float] = (0.001, 0.01)
    hang_seconds: float = 2.0

    def __post_init__(self) -> None:
        total = 0.0
        for kind in FAULT_KINDS:
            value = getattr(self, kind)
            if not 0.0 <= value <= 1.0:
                raise ConfigurationError(
                    f"{kind}: probability must be in [0, 1], got {value!r}"
                )
            total += value
        if total > 1.0:
            raise ConfigurationError(
                f"fault probabilities sum to {total:.3f} > 1 — at most one "
                "fault is injected per operation, so they must fit in [0, 1]"
            )
        lo, hi = self.delay_range
        if not (0.0 <= lo <= hi):
            raise ConfigurationError(
                f"delay_range: need 0 <= lo <= hi, got {self.delay_range!r}"
            )
        if self.hang_seconds < 0:
            raise ConfigurationError(
                f"hang_seconds: must be non-negative, got {self.hang_seconds!r}"
            )

    def total_probability(self) -> float:
        return float(sum(getattr(self, kind) for kind in FAULT_KINDS))

    @classmethod
    def field_names(cls) -> Iterable[str]:  # pragma: no cover - introspection
        return tuple(f.name for f in fields(cls))


class _FaultStream:
    """One deterministic decision sequence (a PCG64 child stream)."""

    def __init__(self, plan: FaultPlan, bit_generator: np.random.PCG64) -> None:
        self.plan = plan
        self._rng = np.random.Generator(bit_generator)
        self.rolls = 0

    def next_fault(self) -> Fault | None:
        """Roll one operation; return its fault, or ``None`` for a clean op."""
        self.rolls += 1
        u = float(self._rng.random())
        edge = 0.0
        for kind in FAULT_KINDS:
            edge += getattr(self.plan, kind)
            if u < edge:
                if kind == "delay":
                    lo, hi = self.plan.delay_range
                    return Fault("delay", float(self._rng.uniform(lo, hi)))
                if kind == "hang":
                    return Fault("hang", float(self.plan.hang_seconds))
                return Fault(kind)
        return None


class FaultSchedule:
    """A seeded family of fault-decision streams.

    One schedule drives one chaos run.  Each wrapped worker handle (or
    service connection) gets its own child stream via :meth:`stream`, keyed
    by ``(scope, incarnation)`` through ``SeedSequence(entropy=seed,
    spawn_key=...)`` — so the decisions any given handle sees depend only
    on the seed and the handle's identity, never on how the coordinator's
    threads interleave.  That is what makes a chaos run replayable: re-run
    with the same seed and every worker incarnation faces the same fault
    sequence.
    """

    def __init__(self, plan: FaultPlan, seed: int) -> None:
        if not isinstance(plan, FaultPlan):
            raise ConfigurationError(
                f"plan must be a FaultPlan, got {type(plan).__name__}"
            )
        if not isinstance(seed, (int, np.integer)) or isinstance(seed, bool):
            raise ConfigurationError(f"seed must be an int, got {seed!r}")
        self.plan = plan
        self.seed = int(seed)

    def stream(self, scope: int, incarnation: int = 0) -> _FaultStream:
        """The deterministic decision stream for one handle incarnation."""
        sequence = np.random.SeedSequence(
            entropy=self.seed, spawn_key=(int(scope), int(incarnation))
        )
        return _FaultStream(self.plan, np.random.PCG64(sequence))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"FaultSchedule(seed={self.seed}, plan={self.plan})"
