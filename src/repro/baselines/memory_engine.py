"""Chunked provisional-simulation engine for the (d,k)-memory hand-off.

The (d,k)-memory protocol (Mitzenmacher–Prabhakar–Shah; Table 1, row 3) is
the last Table-1 baseline whose hot path was a per-ball Python loop: every
ball inherits the ``k`` least loaded bins remembered from the previous ball,
so each decision depends on the full candidate set of its predecessor.  The
engine here removes that loop for the common configurations without changing
a single placement, following the provisional-exact-simulation recipe of
:mod:`repro.core.weighted_engine` — guess the slowly-evolving part of the
state, verify every consequence of the guess in one vectorised pass, and
flip mispredictions to a fixpoint:

* ``k == 0`` — the remembered set is empty, so the protocol *is* greedy[d]
  with first-minimum ties; balls run straight through the conflict-free
  commit engine of :mod:`repro.baselines.engine`.
* ``d == 1, k == 1`` — the paper-relevant configuration (Table 1 uses
  (1,1)-memory).  The protocol state collapses to ``(m, v)`` — the
  remembered bin and its load — and a chunk is resolved by iterating:

  1. **Guess** a per-ball placement vector (initially: every ball places
     into its least-loaded fresh choice).
  2. Under the guess, reconstruct every ball's exact candidate loads with a
     segmented prefix count over the chunk's provisional commits (the
     integer analogue of the weighted engine's prefix-weight sums).
  3. Replay the ``(m, v)`` recurrence *exactly* for all balls at once: in
     drift space ``u_i = v_i - i`` the per-ball transition ``v' =
     min(amin + 1, v + [v < amin])`` collapses to a running minimum that a
     tie knocks one below — a closed form evaluated with one
     ``minimum.accumulate`` and a last-setter pass (see
     :func:`_resolve_chunk_d1`).
  4. Derive the implied placements; the prefix up to (and including) the
     first ball whose placement disagrees with the guess is *certified
     exact* by induction over ball order, so either the fixpoint is reached
     (the whole chunk is the sequential execution) or the certified prefix
     commits and the rest iterates.

  Balls whose single fresh draw *is* the remembered bin are modelled
  inside the vectorised transitions (they place into the shared bin and
  keep remembering it), flagged provisionally and verified like the
  placements.
* every other configuration — ``d > 1`` with ``k >= 1``, and ``k >= 2`` —
  honestly falls back to the chunked scalar hand-off
  (:func:`chunked_memory_hand_off`), the PR-4 hot path of bulk fresh draws
  feeding plain-int sequential commits.  Measured on the benchmark scale,
  the remembered *list* re-orders on most placements (heavy churn) and the
  ``d > 1`` candidate-deduplication semantics force per-ball spills, so a
  vectorised treatment of those regimes loses to the scalar loop
  (0.3-0.8x in every configuration tried); the scalar loop is the honest
  optimum there.

The result — final loads, per-ball assignments and probe-stream consumption
— is **bit-identical** to the per-ball reference
(:func:`repro.baselines.reference.reference_memory`) for every ``(d, k)``,
which ``tests/test_memory_engine.py`` certifies under shared
:class:`~repro.runtime.probes.FixedProbeStream` replay.

:func:`weighted_memory_hand_off` extends the scalar rule to weighted balls
(float loads, per-ball weight increments) for the ``weighted-memory``
protocol; its sequential float dependency cannot ride the tabulated scan
(the load band is continuous), so it stays on the chunk-drawn scalar path.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.engine import chunked_argmin_commit
from repro.core.backend import (  # noqa: F401  (re-exported scalar rules)
    active_backend,
    chunked_memory_hand_off,
    memory_hand_off,
    weighted_memory_hand_off,
)
from repro.errors import ConfigurationError
from repro.runtime.probes import ProbeStream

__all__ = [
    "memory_hand_off",
    "chunked_memory_hand_off",
    "weighted_memory_hand_off",
    "chunked_weighted_memory_commit",
    "chunked_memory_commit",
    "default_memory_chunk_size",
]

#: Fixpoint iterations per k=1 chunk.  Each round certifies a strictly
#: longer exact prefix, so the cap only bounds how much of a chunk may
#: resolve vectorised before the certified prefix is committed and the
#: remainder re-enters as a fresh chunk; correctness never depends on it.
#: Rounds past the first touch only the (geometrically shrinking) suffix of
#: still-flickering balls, so a generous cap costs little.
_MAX_ROUNDS = 30


# --------------------------------------------------------------------- #
# The scalar-rule commit drivers (the literal rules themselves live in
# repro.core.backend, single-homed across every execution strategy)
# --------------------------------------------------------------------- #
def chunked_weighted_memory_commit(
    stream: ProbeStream,
    weighted_loads: np.ndarray,
    memory: list[int],
    weights: np.ndarray,
    d: int,
    k: int,
    assignments: np.ndarray | None = None,
    chunk_size: int | None = None,
) -> list[int]:
    """Place all ``weights`` under the weighted (d,k)-memory rule.

    ``weighted_loads`` (float64 per-bin total weight) is updated in place;
    the remembered set is returned.  The float loads make the rule's
    sequential dependency continuous-valued, so the commits run through the
    active backend's ``weighted_memory_fallback`` — the chunk-drawn scalar
    rule (:func:`weighted_memory_hand_off`) by default, a JIT loop on the
    numba backend.  Bulk fresh draws keep the probe consumption identical
    to a per-ball loop, and any split into calls is bit-identical because
    the sequential state (loads, remembered set) is exact at every boundary.
    """
    n_balls = int(weights.size)
    if d < 1:
        raise ConfigurationError(f"d must be at least 1, got {d}")
    if k < 0:
        raise ConfigurationError(f"k must be non-negative, got {k}")
    if chunk_size is not None and chunk_size < 1:
        raise ConfigurationError(f"chunk_size must be positive, got {chunk_size}")
    memory = [int(b) for b in memory]
    if not n_balls:
        return memory
    return active_backend().weighted_memory_fallback(
        stream,
        weighted_loads,
        memory,
        weights,
        d,
        k,
        assignments=assignments,
        chunk_size=chunk_size,
    )


# --------------------------------------------------------------------- #
# The provisional-simulation fast path (k == 1)
# --------------------------------------------------------------------- #
def default_memory_chunk_size(n_bins: int) -> int:
    """Heuristic balls-per-chunk for the (1,1)-memory fixpoint engine.

    Bigger chunks amortise the per-segment sorting and NumPy-call overhead
    but raise the in-chunk collision rate, which costs extra fixpoint
    rounds; a bit over half a bin's worth of balls per chunk measured best
    at the benchmark scale (1M balls / 10k bins), with the cap keeping the
    per-round working set cache-resident.
    """
    if n_bins <= 0:
        raise ConfigurationError(f"n_bins must be positive, got {n_bins}")
    return int(min(max(1024, 5 * n_bins // 8), 1 << 14))


_EMPTY = np.empty(0, dtype=np.int64)


#: Width of the repair windows of :func:`_window_round`.  A perturbation of
#: the drift-space running minimum is absorbed within the load band (min
#: loads refresh every couple of balls) and a remembered-bin chain resyncs
#: at the next flip, so this horizon is generous; windows that fail to
#: rejoin the stored state simply fall back to a dense round.
_WIN = 64


def _window_round(
    flat: np.ndarray,
    drift: np.ndarray,
    before: np.ndarray,
    tie: np.ndarray,
    flip: np.ndarray,
    lastflip: np.ndarray,
    m_arr: np.ndarray,
    t_prov: np.ndarray,
    spec_prov: np.ndarray,
    heads: np.ndarray,
    mem: int,
    b: int,
    has_spec: bool,
    spec_inf,
) -> tuple[np.ndarray, np.ndarray] | None:
    """Replay fixed-width repair windows instead of a whole dense round.

    Late fixpoint rounds correct a handful of scattered cells; their effect
    on the drift-space running minimum is absorbed within the load band and
    the remembered-bin chain resyncs at the next flip, so replaying a
    :data:`_WIN`-wide window from each correction (batched across windows,
    every scan an ``axis=1`` accumulate) reproduces the dense round exactly
    *provided* each window rejoins the stored state at its end.  That
    rejoining — same drift-space value, same last-flip index, same
    shared-bin flags — is checked explicitly; any mismatch returns ``None``
    and the caller runs the dense round instead, so the windows are purely
    an execution strategy.

    On success the stored per-ball state is updated in place and the
    (ascending) positions whose placements changed are returned with their
    previous bins, ready for the shared placement-delta fold.
    """
    idx = heads[:, None] + np.arange(_WIN, dtype=np.int64)
    valid = idx < b
    idxc = np.minimum(idx, b - 1)
    dwin = drift[idxc]
    if has_spec:
        mask_spec = spec_prov[idxc] & valid
        if mask_spec.any():
            dwin = np.where(mask_spec, spec_inf, dwin)
    if not valid.all():
        dwin = np.where(valid, dwin, spec_inf)  # identity padding
    seeds = (before[heads] - tie[heads]).astype(dwin.dtype, copy=False)
    acc = np.minimum.accumulate(dwin, axis=1)
    bwin = np.empty_like(dwin)
    bwin[:, 0] = seeds
    np.minimum(acc[:, :-1], seeds[:, None], out=bwin[:, 1:])
    bd = bwin - dwin
    set_one = bd == 0
    set_any = (bd >= 2) | set_one
    wcols = np.arange(_WIN, dtype=np.int64)
    setter = np.where(set_any, wcols, -1)
    last = np.empty_like(setter)
    last[:, 0] = -1
    np.maximum.accumulate(setter[:, :-1], axis=1, out=last[:, 1:])
    tiew = np.take_along_axis(set_one, np.maximum(last, 0), 1) & (last >= 0)
    vdiff = bd - tiew
    freshw = vdiff >= 0
    flw = (vdiff >= -1) & (vdiff != 0)
    if has_spec:
        flw |= mask_spec
    fm = np.where(flw, idx, -1)
    fincl = np.maximum.accumulate(fm, axis=1)
    lf = np.empty_like(fm)
    lf[:, 0] = lastflip[heads]
    np.maximum(fincl[:, :-1], lf[:, :1], out=lf[:, 1:])
    m_win = np.where(lf >= 0, flat[np.maximum(lf, 0)], mem)
    t_win = np.where(freshw, flat[idxc], m_win)
    # The shared-bin flags feed the anchor offsets of the placement delta,
    # so windows that change them defer to the dense round.
    if (((flat[idxc] == m_win) & valid) != (spec_prov[idxc] & valid)).any():
        return None
    ends = heads + _WIN
    inner = ends < b
    if inner.any():
        # Trajectory rejoin: drift-space value at the first ball after the
        # window must match the stored one ...
        ls = np.maximum(last[:, -1], setter[:, -1])
        end_tie = (
            np.take_along_axis(set_one, np.maximum(ls, 0)[:, None], 1)[:, 0]
            & (ls >= 0)
        )
        u_new = np.minimum(acc[:, -1], seeds) - end_tie
        qi = ends[inner]
        if (u_new[inner] != before[qi] - tie[qi]).any():
            return None
        # ... and so must the remembered-bin chain (last flip index).
        lf_end = np.maximum(lf[:, -1], fm[:, -1])
        if (lf_end[inner] != lastflip[qi]).any():
            return None
    # Every window rejoins: the splice is exactly the dense round's result.
    gidx = idx[valid]  # ascending: windows are sorted and disjoint
    old_bins = t_prov[gidx]
    before[gidx] = bwin[valid]
    tie[gidx] = tiew[valid]
    flip[gidx] = flw[valid]
    lastflip[gidx] = lf[valid]
    m_arr[gidx] = m_win[valid]
    t_new = t_win[valid]
    ch = t_new != old_bins
    t_prov[gidx] = t_new
    return gidx[ch], old_bins[ch]


def _spaced_heads(positions: np.ndarray) -> np.ndarray | None:
    """Greedy :data:`_WIN`-spaced window heads covering ``positions``."""
    heads = []
    nxt = -1
    for p in positions.tolist():
        if p >= nxt:
            heads.append(p)
            nxt = p + _WIN
            if len(heads) > 48:
                return None
    return np.asarray(heads, dtype=np.int64)


def _resolve_chunk_d1(
    loads: np.ndarray,
    fresh: np.ndarray,
    mem: int,
    v: int,
    assignments: np.ndarray | None,
    base: int,
) -> tuple[int, int, int]:
    """Fixpoint resolution of a d=1, k=1 chunk — the paper-relevant config.

    Returns ``(committed, mem, v)``: the number of leading balls committed
    exactly (``loads`` and ``assignments`` updated in place) and the
    remembered state after them — the whole chunk at the fixpoint, or the
    certified prefix if the round cap strikes first (progress is always at
    least one ball, so the caller just re-enters).  The resolution never
    searches or tabulates:

    * the ``(m, v)`` recurrence is replayed in closed form: in drift space
      ``u_i = v_i - i`` the transition collapses to a running minimum that
      a tie knocks one below, so the scan is a ``minimum.accumulate`` plus
      a last-setter pass, and every decision derives from one
      ``before - drift`` array;
    * a fresh placement's insertion point in the ``(bin, ball)``-sorted
      cell order is its own cell's rank, and a memory placement's is its
      run anchor's rank offset by the shared-bin balls of the run — plain
      gathers, recorded so stale contributions are removed without search;
    * a correction wave whose touched cells all sit strictly above the
      running minimum (and flip no decision) cannot perturb the trajectory,
      so the round that would merely verify it is skipped — and a sparse
      non-benign wave is replayed in fixed-width repair windows
      (:func:`_window_round`) instead of a dense suffix round.
    """
    b = fresh.shape[0]
    n = loads.size
    flat = fresh[:, 0]
    if n <= 65536:
        # Stable integer argsort on uint16 keys is a radix sort — an order
        # of magnitude faster than comparison-sorting composite keys, and
        # stability makes it exactly the (bin, ball) order.
        qorder = np.argsort(flat.astype(np.uint16), kind="stable")
    else:
        qorder = np.argsort(flat * np.int64(b) + np.arange(b), kind="stable")
    sorted_bins = flat[qorder]
    if n <= 8 * b:
        group_end: np.ndarray | None = np.cumsum(np.bincount(flat, minlength=n))
    else:
        group_end = None

    cells = loads[flat]
    big = int(cells.max()) if b else 0
    if big + b >= np.iinfo(np.int32).max // 2 or v + b >= np.iinfo(np.int32).max // 2:
        dt = np.int64  # absurdly loaded bins: keep 64-bit arithmetic
    else:
        dt = np.int32
    cells = cells.astype(dt, copy=False)
    rows = np.arange(b, dtype=np.int64)
    rows_dt = rows.astype(dt, copy=False) if dt is np.int32 else rows

    # Warm start: fold the all-fresh guess into the cells via each draw's
    # occurrence rank, read straight off the sorted cell order.
    new_group = np.empty(b, dtype=bool)
    new_group[0] = True
    new_group[1:] = sorted_bins[1:] != sorted_bins[:-1]
    ranks = rows - np.maximum.accumulate(np.where(new_group, rows, 0))
    cells[qorder] += ranks.astype(dt, copy=False)
    t_prov = flat.copy()
    # Sorted-order rank of each ball's cell and the position its current
    # placement contributes from (for removal without search).
    qrank = np.empty(b, dtype=np.int64)
    qrank[qorder] = rows
    lo_arr = qrank + 1
    skey = None  # lazily built keys for entry-memory placements
    speccum: np.ndarray | None = None  # cumulative shared-bin flags
    has_spec = False  # any shared-bin ball flagged in this chunk yet
    spec_inf = dt(np.iinfo(dt).max // 2)

    # Persistent full-length state; every round recomputes the suffix from
    # the first ball whose inputs changed (or just the repair windows).
    before = np.empty(b, dtype=dt)  # running min of drift, strictly before
    tie = np.zeros(b, dtype=bool)
    flip = np.empty(b, dtype=bool)
    m_arr = np.empty(b, dtype=np.int64)
    lastflip = np.full(b, -1, dtype=np.int64)
    spec_prov = np.zeros(b, dtype=bool)
    drift = cells - rows_dt
    exact_hi = 1
    s = 0
    win_heads: np.ndarray | None = None
    for _ in range(_MAX_ROUNDS):
        from_window = False
        if win_heads is not None:
            wres = _window_round(
                flat, drift, before, tie, flip, lastflip, m_arr, t_prov,
                spec_prov, win_heads, mem, b, has_spec, spec_inf,
            )
            win_heads = None
            if wres is not None:
                abs_changed, old_bins = wres
                spec_changed = _EMPTY
                from_window = True
        if not from_window:
            # --- dense round: closed-form replay of the suffix ---
            sl = slice(s, b)
            # The restart state is one number: u_s = R_s - tie_s.  A scan
            # seeded with it is self-consistent (its own running minimum
            # starts at u_s with a clear tie bit), so suffix restarts need
            # no other prefix context.
            entry_u = (v - s) if s == 0 else int(before[s]) - int(tie[s])
            dsl = drift[sl]
            if has_spec and spec_prov[sl].any():
                dsl = np.where(spec_prov[sl], spec_inf, dsl)
            acc = np.minimum.accumulate(dsl)
            before[s] = entry_u
            np.minimum(acc[:-1], dt(entry_u), out=before[s + 1 :])
            bd = before[sl] - dsl
            set_any = bd >= 2
            set_one = bd == 0
            np.logical_or(set_any, set_one, out=set_any)
            setter = np.where(set_any, rows[: b - s], -1)
            last = np.empty(b - s, dtype=np.int64)
            last[0] = -1
            np.maximum.accumulate(setter[:-1], out=last[1:])
            tie_sl = np.where(last >= 0, set_one[np.maximum(last, 0)], False)
            tie[sl] = tie_sl
            vdiff = bd - tie_sl  # == values - amin
            fresh_ball = vdiff >= 0
            # Flips: fresh placements strictly below the remembered load,
            # memory placements that tie it, and shared-bin balls; the new
            # remembered bin is the ball's fresh draw in every case.
            fl = (vdiff >= -1) & (vdiff != 0)
            if has_spec:
                fl |= spec_prov[sl]
            flip[sl] = fl
            incl = np.maximum.accumulate(np.where(fl, rows[sl], -1))
            if s + 1 < b:
                np.maximum(incl[:-1], lastflip[s], out=lastflip[s + 1 :])
            m_arr[sl] = flat[np.maximum(lastflip[sl], 0)]
            if lastflip[s] < 0:
                # Balls before the chunk's first flip still remember the
                # entry bin; this only reaches past ``s`` at the chunk head.
                head = np.flatnonzero(lastflip[sl] < 0)
                m_arr[s : s + head.size] = mem
            t_round = np.where(fresh_ball, flat[sl], m_arr[sl])

            changed = (t_round != t_prov[sl]).nonzero()[0]
            abs_changed = changed + s
            old_bins = t_prov[sl][changed] if changed.size else _EMPTY
            t_prov[sl] = t_round
            spec_round = flat[sl] == m_arr[sl]
            s_neq = spec_round != spec_prov[sl]
            spec_changed = s_neq.nonzero()[0] if s_neq.any() else _EMPTY
            if spec_changed.size:
                # The shared-bin flags feed the run-anchor offsets of the
                # placement delta below, so they must describe *this*
                # round's execution before the delta is applied.
                spec_prov[sl] = spec_round
                speccum = np.cumsum(spec_prov)
                has_spec = bool(speccum[-1])

        # --- shared tail: certified prefix, delta fold, wave triage ---
        # Balls before the first disagreement used correct loads and state,
        # and a disagreeing *placement* was itself decided from exact
        # inputs, so the exact prefix includes it; a wrong shared-bin flag
        # corrupts the ball's post-state, so that ball is excluded.
        exact_hi = int(abs_changed[0]) + 1 if abs_changed.size else b
        if spec_changed.size:
            exact_hi = min(exact_hi, int(spec_changed[0]) + s)
        converged = not abs_changed.size and not spec_changed.size
        if abs_changed.size:
            # Fold the changed placements into the cells: remove the stale
            # contributions at their recorded insertion points, add the new
            # ones at ranks derived from the run anchors.
            new_bins = t_prov[abs_changed]
            diff = np.zeros(b + 1, dtype=np.int64)
            np.add.at(diff, lo_arr[abs_changed], -1)
            ge_old = (
                group_end[old_bins]
                if group_end is not None
                else np.searchsorted(sorted_bins, old_bins, side="right")
            )
            np.add.at(diff, ge_old, 1)
            own = new_bins == flat[abs_changed]
            anchors = lastflip[abs_changed]
            anchor_idx = np.maximum(anchors, 0)
            anchor_lo = qrank[anchor_idx] + 1
            if speccum is not None:
                anchor_lo += speccum[abs_changed] - speccum[anchor_idx]
            lo_new = np.where(own, qrank[abs_changed] + 1, anchor_lo)
            no_anchor = ~own & (anchors < 0)
            if no_anchor.any():
                # Memory placements into the chunk-entry remembered bin
                # (before any flip): no anchor cell exists, so these few
                # fall back to a search.
                if skey is None:
                    skey = sorted_bins * np.int64(b) + qorder
                nz = np.flatnonzero(no_anchor)
                lo_new[nz] = np.searchsorted(
                    skey, new_bins[nz] * np.int64(b) + abs_changed[nz] + 1
                )
            np.add.at(diff, lo_new, 1)
            ge_new = (
                group_end[new_bins]
                if group_end is not None
                else np.searchsorted(sorted_bins, new_bins, side="right")
            )
            np.add.at(diff, ge_new, -1)
            lo_arr[abs_changed] = lo_new
            run = np.cumsum(diff[:-1])
            touched = run.nonzero()[0]
            balls_touched = qorder[touched]
            if balls_touched.size:
                delta = run[touched].astype(dt, copy=False)
                cells[balls_touched] += delta
                old_drift = drift[balls_touched]
                new_drift = old_drift + delta
                drift[balls_touched] = new_drift
                # Benign touches — cells that stay strictly above the
                # running minimum (old and new) cannot perturb the
                # trajectory, and if the ball's decision and flip flag do
                # not move either, the touch has no effect at all.  When
                # every touch is benign the verification round is skipped;
                # a sparse non-benign wave is replayed in repair windows,
                # and only a broad one costs a dense suffix round.
                bt = before[balls_touched]
                above = np.minimum(old_drift, new_drift) > bt
                vdt = bt - new_drift - tie[balls_touched]
                fresh_t = vdt >= 0
                fl_t = (vdt >= -1) & (vdt != 0)
                if has_spec:
                    fl_t |= spec_prov[balls_touched]
                stable = (
                    above
                    & (fresh_t == (t_prov[balls_touched] == flat[balls_touched]))
                    & (fl_t == flip[balls_touched])
                )
                if stable.all():
                    if not spec_changed.size:
                        converged = True
                    else:
                        s = int(spec_changed[0]) + s
                else:
                    unstable = np.sort(balls_touched[~stable])
                    next_s = int(unstable[0])
                    if spec_changed.size:
                        next_s = min(next_s, int(spec_changed[0]) + s)
                    elif unstable.size * 3 * _WIN < b - next_s:
                        win_heads = _spaced_heads(unstable)
                    s = next_s
            else:
                if spec_changed.size:
                    s = int(spec_changed[0]) + s
                else:
                    converged = True
        elif spec_changed.size:
            s = int(spec_changed[0]) + s
        if converged:
            _commit(loads, t_prov, b, assignments, base)
            # Exit state from the stored per-ball pairs: apply the last
            # ball's transition to u(b-1) and read off its flip.
            u_last = int(before[b - 1]) - int(tie[b - 1])
            if has_spec and spec_prov[b - 1]:
                u_end = u_last
            else:
                a_last = int(drift[b - 1])
                if u_last < a_last:
                    u_end = u_last
                elif u_last > a_last:
                    u_end = a_last
                else:
                    u_end = a_last - 1
            lf_end = b - 1 if flip[b - 1] else int(lastflip[b - 1])
            mem_exit = int(flat[lf_end]) if lf_end >= 0 else mem
            return b, mem_exit, u_end + b
    # Round cap: commit the certified prefix and let the caller re-enter
    # with refreshed base loads (progress is guaranteed, exact_hi >= 1).
    _commit(loads, t_prov, exact_hi, assignments, base)
    if exact_hi < b:
        v_at = int(before[exact_hi]) - int(tie[exact_hi]) + exact_hi
        return exact_hi, int(m_arr[exact_hi]), v_at
    return exact_hi, mem, v


def _commit(
    loads: np.ndarray,
    targets: np.ndarray,
    count: int,
    assignments: np.ndarray | None,
    base: int,
) -> None:
    """Fold the first ``count`` exact placements into the global state."""
    if not count:
        return
    block = targets[:count]
    if count * 16 >= loads.size:
        loads += np.bincount(block, minlength=loads.size)
    else:
        np.add.at(loads, block, 1)
    if assignments is not None:
        assignments[base : base + count] = block


def _scalar_one(
    loads: np.ndarray,
    row: np.ndarray,
    mem: list[int],
    k: int,
    assignments: np.ndarray | None,
    index: int,
) -> list[int]:
    """Resolve a single ball with the literal scalar rule."""
    out: list[int] = []
    mem = memory_hand_off(loads, [row.tolist()], mem, k, assignments=out)
    if assignments is not None:
        assignments[index] = out[0]
    return mem


def chunked_memory_commit(
    stream: ProbeStream,
    loads: np.ndarray,
    memory: list[int],
    n_balls: int,
    d: int,
    k: int,
    assignments: np.ndarray | None = None,
    chunk_size: int | None = None,
) -> list[int]:
    """Place ``n_balls`` (d,k)-memory balls through the provisional engine.

    Parameters
    ----------
    stream:
        Probe stream; consumes exactly ``n_balls * d`` probes in the same
        row-major order as a per-ball loop (one bulk
        :meth:`~repro.runtime.probes.ProbeStream.take_matrix` per chunk).
    loads:
        Per-bin int64 load vector, updated in place.
    memory:
        Remembered bins entering the run (``[]`` at a fresh start); the
        updated remembered set is returned, so callers can stream any split
        of the balls through repeated calls bit-identically.
    n_balls, d, k:
        Chunk of the protocol to execute.
    assignments:
        Optional int64 output vector of length ``n_balls``; ball ``i``
        writes its bin to ``assignments[i]``.
    chunk_size:
        Balls per engine chunk (default :func:`default_memory_chunk_size`);
        any value yields bit-identical results.

    The ``d == 1, k == 1`` fast path runs the fixpoint of
    :func:`_resolve_chunk_d1` (on backends supporting provisional memory);
    ``k == 0`` delegates to the conflict-free d-choice engine; every other
    configuration (heavy remembered-set churn or ``d > 1`` candidate
    deduplication, where the scalar loop measures faster than any
    vectorised treatment tried) runs the active backend's
    ``memory_fallback`` — the chunk-drawn scalar hand-off by default, a
    JIT loop on the numba backend.
    """
    if n_balls < 0:
        raise ConfigurationError(f"n_balls must be non-negative, got {n_balls}")
    if d < 1:
        raise ConfigurationError(f"d must be at least 1, got {d}")
    if k < 0:
        raise ConfigurationError(f"k must be non-negative, got {k}")
    if chunk_size is not None and chunk_size < 1:
        raise ConfigurationError(f"chunk_size must be positive, got {chunk_size}")
    memory = [int(b) for b in memory]
    if not n_balls:
        return memory

    if k == 0:
        chunked_argmin_commit(
            loads,
            lambda start, count: stream.take_matrix(count, d),
            n_balls,
            d,
            chunk_size=chunk_size,
            assignments=assignments,
        )
        return []

    backend = active_backend()
    if k >= 2 or d > 1 or not backend.provisional_memory:
        return backend.memory_fallback(
            stream,
            loads,
            memory,
            n_balls,
            d,
            k,
            assignments=assignments,
            chunk_size=chunk_size,
        )

    chunk = int(chunk_size) if chunk_size else default_memory_chunk_size(loads.size)
    placed = 0
    while placed < n_balls:
        count = min(chunk, n_balls - placed)
        fresh = stream.take_matrix(count, d)
        start = 0
        if not memory:
            # The very first ball has no remembered bin; seed the (m, v)
            # state with one literal step.
            memory = _scalar_one(loads, fresh[0], memory, 1, assignments, placed)
            start = 1
        mem = memory[0]
        v = int(loads[mem])
        while start < count:
            # Each attempt commits at least one exact ball (the round cap
            # commits the certified prefix), so this loop terminates.
            done, mem, v = _resolve_chunk_d1(
                loads, fresh[start:], mem, v, assignments, placed + start
            )
            start += done
        memory = [mem]
        placed += count
    return memory
