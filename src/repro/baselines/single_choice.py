"""Classical single-choice allocation.

Every ball is placed into a bin chosen independently and uniformly at random.
For ``m = n`` the maximum load is ``log n / log log n · (1 + o(1))`` w.h.p.
(Raab & Steger, cited as [15] in the paper); for ``m ≫ n log n`` it is
``m/n + Θ(sqrt(m log n / n))``.  The protocol uses exactly ``m`` probes and is
the natural lower bound on allocation time — every other protocol in Table 1
pays more probes to achieve a smaller maximum load.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from repro.core.protocol import (
    AllocationProtocol,
    batch_streams,
    register_protocol,
)
from repro.core.result import AllocationResult
from repro.core.session import ProtocolSession
from repro.errors import ConfigurationError
from repro.runtime.costs import CostModel
from repro.runtime.probes import ProbeStream, RandomProbeStream
from repro.runtime.rng import SeedLike

__all__ = ["SingleChoiceProtocol", "run_single_choice"]


@register_protocol
class SingleChoiceProtocol(AllocationProtocol):
    """One uniformly random choice per ball (no load information used)."""

    name = "single-choice"
    streaming = True
    batches = True

    def __init__(self) -> None:
        # No parameters; keep an explicit __init__ so the registry-based
        # factory never passes stray keyword arguments silently.
        super().__init__()

    def params(self) -> dict[str, Any]:
        return {}

    def begin(
        self,
        n_balls: int,
        n_bins: int,
        seed: SeedLike = None,
        *,
        probe_stream: ProbeStream | None = None,
        record_trace: bool = False,
    ) -> "_SingleChoiceSession":
        self.validate_size(n_balls, n_bins)
        stream = probe_stream or RandomProbeStream(n_bins, seed)
        return _SingleChoiceSession(self, n_balls, n_bins, stream)

    def allocate(
        self,
        n_balls: int,
        n_bins: int,
        seed: SeedLike = None,
        *,
        probe_stream: ProbeStream | None = None,
        record_trace: bool = False,
    ) -> AllocationResult:
        self.validate_size(n_balls, n_bins)
        stream = probe_stream or RandomProbeStream(n_bins, seed)
        if stream.n_bins != n_bins:
            raise ConfigurationError(
                "probe_stream.n_bins does not match the requested n_bins"
            )
        choices = stream.take(n_balls)
        loads = np.bincount(choices, minlength=n_bins).astype(np.int64)
        costs = CostModel(probes=n_balls)
        return AllocationResult(
            protocol=self.name,
            n_balls=n_balls,
            n_bins=n_bins,
            loads=loads,
            allocation_time=n_balls,
            costs=costs,
            params=self.params(),
        )


    def allocate_batch(
        self,
        n_balls: int,
        n_bins: int,
        seeds=None,
        *,
        probe_streams=None,
        record_trace: bool = False,
    ) -> "list[AllocationResult]":
        self.validate_size(n_balls, n_bins)
        batch = batch_streams(n_bins, seeds, probe_streams)
        n_trials = batch.trials
        loads = np.zeros((n_trials, n_bins), dtype=np.int64)
        flat = loads.reshape(-1)
        offsets = (np.arange(n_trials, dtype=np.int64) * n_bins)[:, None]
        indices = np.arange(n_trials, dtype=np.int64)
        # Bound the transient block to ~32 MB of int64 regardless of trials.
        chunk = max(1, (1 << 22) // n_trials)
        done = 0
        while done < n_balls:
            count = min(chunk, n_balls - done)
            block = batch.take_batch(indices, count) + offsets
            flat += np.bincount(block.reshape(-1), minlength=flat.size)
            done += count
        return [
            AllocationResult(
                protocol=self.name,
                n_balls=n_balls,
                n_bins=n_bins,
                loads=loads[t].copy(),
                allocation_time=n_balls,
                costs=CostModel(probes=n_balls),
                params=self.params(),
            )
            for t in range(n_trials)
        ]


class _SingleChoiceSession(ProtocolSession):
    """Streaming single-choice: one uniform probe per ball."""

    def __init__(self, protocol, n_balls, n_bins, stream) -> None:
        super().__init__(protocol, n_balls, n_bins, stream)
        self._loads = np.zeros(n_bins, dtype=np.int64)

    @property
    def loads(self) -> np.ndarray:
        return self._loads

    @property
    def probes(self) -> int:
        return self.placed

    def _place(self, k: int) -> None:
        self._loads += np.bincount(self.stream.take(k), minlength=self.n_bins)

    def _finalize(self) -> AllocationResult:
        return AllocationResult(
            protocol=self.protocol.name,
            n_balls=self.n_balls,
            n_bins=self.n_bins,
            loads=self._loads,
            allocation_time=self.n_balls,
            costs=CostModel(probes=self.n_balls),
            params=self.protocol.params(),
        )


def run_single_choice(
    n_balls: int, n_bins: int, seed: SeedLike = None
) -> AllocationResult:
    """Functional one-liner for :class:`SingleChoiceProtocol`."""
    return SingleChoiceProtocol().allocate(n_balls, n_bins, seed)
