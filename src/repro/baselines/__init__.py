"""Baseline allocation protocols: every comparison row of Table 1.

* :class:`~repro.baselines.single_choice.SingleChoiceProtocol` — one uniform
  choice per ball (the classical process, allocation-time lower bound).
* :class:`~repro.baselines.greedy.GreedyProtocol` — greedy[d] of Azar et al.
* :class:`~repro.baselines.left.LeftProtocol` — Vöcking's left[d].
* :class:`~repro.baselines.memory.MemoryProtocol` — the (d,k)-memory protocol
  of Mitzenmacher, Prabhakar and Shah.
* :class:`~repro.baselines.rebalancing.RebalancingProtocol` — greedy[d] plus
  self-balancing moves in the spirit of Czumaj, Riley and Scheideler.

All d-choice baselines run through the chunked exact vectorised commit
engine of :mod:`repro.baselines.engine`; the original ball-by-ball loops are
kept in :mod:`repro.baselines.reference` (mirroring
:mod:`repro.core.reference` and :mod:`repro.scheduler.reference`) so the
test-suite can certify bit-identical replay equivalence.

Importing this subpackage registers all of them with the protocol registry.
"""

from repro.baselines.engine import (
    chunked_argmin_commit,
    chunked_move_sweep,
    default_chunk_size,
)
from repro.baselines.greedy import GreedyProtocol, run_greedy
from repro.baselines.left import (
    LeftProtocol,
    group_boundaries,
    replay_group_map,
    run_left,
)
from repro.baselines.memory import MemoryProtocol, run_memory
from repro.baselines.rebalancing import RebalancingProtocol, run_rebalancing
from repro.baselines.reference import (
    reference_greedy,
    reference_left,
    reference_memory,
    reference_rebalancing,
)
from repro.baselines.single_choice import SingleChoiceProtocol, run_single_choice

__all__ = [
    "GreedyProtocol",
    "run_greedy",
    "LeftProtocol",
    "run_left",
    "group_boundaries",
    "replay_group_map",
    "MemoryProtocol",
    "run_memory",
    "RebalancingProtocol",
    "run_rebalancing",
    "SingleChoiceProtocol",
    "run_single_choice",
    "chunked_argmin_commit",
    "chunked_move_sweep",
    "default_chunk_size",
    "reference_greedy",
    "reference_left",
    "reference_memory",
    "reference_rebalancing",
]
