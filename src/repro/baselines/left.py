"""left[d]: Vöcking's always-go-left protocol with asymmetric tie breaking.

The ``n`` bins are split into ``d`` groups of (almost) equal size.  Every ball
samples one uniform bin from each group and is placed into a least loaded one;
ties are broken *asymmetrically* in favour of the leftmost group.  Vöcking
showed this achieves a maximum load of ``ln ln n / (d · ln Φ_d) + O(1)`` for
``m = n`` — better than greedy[d] even though it uses the same number of
probes — and that this matches his general lower bound.  Berenbrink et al.
extended the analysis to the heavily loaded case (Table 1, second row).
"""

from __future__ import annotations

from typing import Any

import numpy as np

from repro.core.protocol import AllocationProtocol, register_protocol
from repro.core.result import AllocationResult
from repro.errors import ConfigurationError
from repro.runtime.costs import CostModel
from repro.runtime.probes import ProbeStream, RandomProbeStream
from repro.runtime.rng import SeedLike

__all__ = ["LeftProtocol", "run_left", "group_boundaries"]


def group_boundaries(n_bins: int, d: int) -> np.ndarray:
    """Return the ``d+1`` boundaries splitting ``n_bins`` bins into ``d`` groups.

    Group ``g`` consists of bins ``boundaries[g] … boundaries[g+1]-1``.  The
    first ``n_bins % d`` groups receive one extra bin so that every bin
    belongs to exactly one group.
    """
    if d < 1:
        raise ConfigurationError(f"d must be at least 1, got {d}")
    if n_bins < d:
        raise ConfigurationError(
            f"need at least d={d} bins to form d groups, got {n_bins}"
        )
    sizes = np.full(d, n_bins // d, dtype=np.int64)
    sizes[: n_bins % d] += 1
    return np.concatenate(([0], np.cumsum(sizes)))


@register_protocol
class LeftProtocol(AllocationProtocol):
    """left[d] allocation (Vöcking's asymmetric tie-breaking rule).

    Parameters
    ----------
    d:
        Number of groups / choices per ball (``d >= 2`` for the asymmetry to
        matter, but ``d = 1`` is accepted and equals single-choice).
    """

    name = "left"

    def __init__(self, d: int = 2) -> None:
        if d < 1:
            raise ConfigurationError(f"d must be at least 1, got {d}")
        self.d = int(d)

    def params(self) -> dict[str, Any]:
        return {"d": self.d}

    def allocate(
        self,
        n_balls: int,
        n_bins: int,
        seed: SeedLike = None,
        *,
        probe_stream: ProbeStream | None = None,
        record_trace: bool = False,
    ) -> AllocationResult:
        self.validate_size(n_balls, n_bins)
        if probe_stream is not None:
            raise ConfigurationError(
                "left[d] samples one bin per group and cannot replay a uniform "
                "probe stream"
            )
        rng = RandomProbeStream(n_bins, seed).generator
        boundaries = group_boundaries(n_bins, self.d)
        sizes = np.diff(boundaries)

        loads = np.zeros(n_bins, dtype=np.int64)
        if n_balls:
            # choices[i, g] = bin sampled by ball i from group g.
            offsets = rng.random(size=(n_balls, self.d))
            choices = (boundaries[:-1] + np.floor(offsets * sizes)).astype(np.int64)
            for i in range(n_balls):
                row = choices[i]
                candidate_loads = loads[row]
                # argmin returns the first (leftmost group) minimum: exactly
                # Vöcking's asymmetric tie-breaking rule.
                target = row[int(np.argmin(candidate_loads))]
                loads[target] += 1

        probes = n_balls * self.d
        return AllocationResult(
            protocol=self.name,
            n_balls=n_balls,
            n_bins=n_bins,
            loads=loads,
            allocation_time=probes,
            costs=CostModel(probes=probes),
            params=self.params(),
        )


def run_left(
    n_balls: int, n_bins: int, seed: SeedLike = None, *, d: int = 2
) -> AllocationResult:
    """Functional one-liner for :class:`LeftProtocol`."""
    return LeftProtocol(d=d).allocate(n_balls, n_bins, seed)
