"""left[d]: Vöcking's always-go-left protocol with asymmetric tie breaking.

The ``n`` bins are split into ``d`` groups of (almost) equal size.  Every ball
samples one uniform bin from each group and is placed into a least loaded one;
ties are broken *asymmetrically* in favour of the leftmost group.  Vöcking
showed this achieves a maximum load of ``ln ln n / (d · ln Φ_d) + O(1)`` for
``m = n`` — better than greedy[d] even though it uses the same number of
probes — and that this matches his general lower bound.  Berenbrink et al.
extended the analysis to the heavily loaded case (Table 1, second row).

The per-ball loop of the seed implementation (kept as
:func:`repro.baselines.reference.reference_left`) is replaced by the chunked
commit engine of :mod:`repro.baselines.engine`; the leftmost-minimum rule is
exactly the engine's first-minimum tie-break, so the loads are bit-identical
to the sequential loop for the same randomness.

Replay contract
---------------
Seeded runs sample each ball's in-group offsets from one up-front matrix of
uniform floats, exactly as the seed implementation did (any group sizes).
When an explicit ``probe_stream`` is given the groups must be of equal size
(``n_bins`` divisible by ``d``): the ``g``-th probe of a ball, uniform over
``{0, …, n-1}``, maps to the uniform in-group choice ``g·(n/d) + probe mod
(n/d)``, consuming ``d`` stream probes per ball in ball order — which is what
lets a :class:`~repro.runtime.probes.FixedProbeStream` replay certify the
engine against the reference.  Unequal groups cannot be driven by a uniform
stream without biasing some bins, so that case still raises
:class:`~repro.errors.ConfigurationError`.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from repro.baselines.engine import (
    batched_argmin_commit,
    chunked_argmin_commit,
    matrix_source,
)
from repro.baselines.greedy import DChoiceSession
from repro.core.protocol import (
    AllocationProtocol,
    batch_streams,
    register_protocol,
)
from repro.core.result import AllocationResult
from repro.errors import ConfigurationError
from repro.runtime.costs import CostModel
from repro.runtime.probes import ProbeStream, RandomProbeStream
from repro.runtime.rng import SeedLike

__all__ = [
    "LeftProtocol",
    "run_left",
    "group_boundaries",
    "replay_group_map",
    "seeded_group_choices",
]


def group_boundaries(n_bins: int, d: int) -> np.ndarray:
    """Return the ``d+1`` boundaries splitting ``n_bins`` bins into ``d`` groups.

    Group ``g`` consists of bins ``boundaries[g] … boundaries[g+1]-1``.  The
    first ``n_bins % d`` groups receive one extra bin so that every bin
    belongs to exactly one group.
    """
    if d < 1:
        raise ConfigurationError(f"d must be at least 1, got {d}")
    if n_bins < d:
        raise ConfigurationError(
            f"need at least d={d} bins to form d groups, got {n_bins}"
        )
    sizes = np.full(d, n_bins // d, dtype=np.int64)
    sizes[: n_bins % d] += 1
    return np.concatenate(([0], np.cumsum(sizes)))


def replay_group_map(n_bins: int, d: int) -> tuple[np.ndarray, int]:
    """Return ``(group_base, size)`` for mapping uniform probes onto groups.

    This is the single home of the left[d] replay contract: it requires
    ``n_bins`` divisible by ``d`` (equal groups) and a probe ``v`` uniform
    over ``{0, …, n-1}`` for group ``g`` maps to the uniform in-group choice
    ``group_base[g] + v % size``.  Both :class:`LeftProtocol` and the
    dispatcher's ``"left"`` policy (plus their per-ball references) go
    through this helper, so the mapping cannot silently diverge.  Unequal
    groups cannot be driven by a uniform stream without biasing some bins,
    hence the :class:`~repro.errors.ConfigurationError`.
    """
    boundaries = group_boundaries(n_bins, d)
    if n_bins % d:
        raise ConfigurationError(
            "left[d] probe replay needs equal groups: n_bins must be "
            f"divisible by d, got {n_bins} bins and d={d}"
        )
    return boundaries[:-1], n_bins // d


def seeded_group_choices(
    n_bins: int, d: int, n_balls: int, generator: np.random.Generator
) -> np.ndarray:
    """Draw every ball's one-bin-per-group choices from uniform floats.

    ``choices[i, g]`` is the bin ball ``i`` samples from group ``g`` —
    exactly the seed implementation's up-front float-offset sampling, which
    works for any group sizes.  This is the single home of the seeded
    left[d] sampling, shared by :class:`LeftProtocol` (one-shot and
    streaming) and the weighted left[d] runners so the three cannot drift.
    """
    boundaries = group_boundaries(n_bins, d)
    sizes = np.diff(boundaries)
    offsets = generator.random(size=(n_balls, d))
    return (boundaries[:-1] + np.floor(offsets * sizes)).astype(np.int64)


@register_protocol
class LeftProtocol(AllocationProtocol):
    """left[d] allocation (Vöcking's asymmetric tie-breaking rule).

    Parameters
    ----------
    d:
        Number of groups / choices per ball (``d >= 2`` for the asymmetry to
        matter, but ``d = 1`` is accepted and equals single-choice).
    """

    name = "left"
    streaming = True
    batches = True

    def __init__(self, d: int = 2) -> None:
        if d < 1:
            raise ConfigurationError(f"d must be at least 1, got {d}")
        self.d = int(d)

    def params(self) -> dict[str, Any]:
        return {"d": self.d}

    def begin(
        self,
        n_balls: int,
        n_bins: int,
        seed: SeedLike = None,
        *,
        probe_stream: ProbeStream | None = None,
        record_trace: bool = False,
    ) -> DChoiceSession:
        self.validate_size(n_balls, n_bins)
        if probe_stream is not None:
            # Replay mode: uniform probes map onto equal groups, exactly as
            # in the one-shot run.
            group_base, size = replay_group_map(n_bins, self.d)
            stream = probe_stream
            source = (
                lambda start, count: group_base
                + stream.take_matrix(count, self.d) % size
            )
        else:
            # Seeded mode: the full in-group offset matrix is drawn up front
            # (identical to the one-shot run), then sliced per step.
            stream = RandomProbeStream(n_bins, seed)
            source = matrix_source(
                seeded_group_choices(n_bins, self.d, n_balls, stream.generator)
            )
        return DChoiceSession(
            self, n_balls, n_bins, stream, d=self.d, source=source
        )

    def allocate(
        self,
        n_balls: int,
        n_bins: int,
        seed: SeedLike = None,
        *,
        probe_stream: ProbeStream | None = None,
        record_trace: bool = False,
    ) -> AllocationResult:
        self.validate_size(n_balls, n_bins)
        loads = np.zeros(n_bins, dtype=np.int64)

        if probe_stream is not None:
            if probe_stream.n_bins != n_bins:
                raise ConfigurationError(
                    "probe_stream.n_bins does not match the requested n_bins"
                )
            group_base, size = replay_group_map(n_bins, self.d)
            chunked_argmin_commit(
                loads,
                lambda start, count: group_base
                + probe_stream.take_matrix(count, self.d) % size,
                n_balls,
                self.d,
            )
        else:
            group_boundaries(n_bins, self.d)  # validates d against n_bins
            if n_balls:
                choices = seeded_group_choices(
                    n_bins, self.d, n_balls, RandomProbeStream(n_bins, seed).generator
                )
                chunked_argmin_commit(
                    loads, matrix_source(choices), n_balls, self.d
                )

        probes = n_balls * self.d
        return AllocationResult(
            protocol=self.name,
            n_balls=n_balls,
            n_bins=n_bins,
            loads=loads,
            allocation_time=probes,
            costs=CostModel(probes=probes),
            params=self.params(),
        )

    def allocate_batch(
        self,
        n_balls: int,
        n_bins: int,
        seeds=None,
        *,
        probe_streams=None,
        record_trace: bool = False,
    ) -> "list[AllocationResult]":
        self.validate_size(n_balls, n_bins)
        batch = batch_streams(n_bins, seeds, probe_streams)
        loads = np.zeros((batch.trials, n_bins), dtype=np.int64)
        if probe_streams is not None:
            # Replay mode: each trial maps its own uniform probes onto equal
            # groups, exactly as the single-trial run does.
            group_base, size = replay_group_map(n_bins, self.d)
            sources = [
                lambda start, count, child=child: group_base
                + child.take_matrix(count, self.d) % size
                for child in batch.children
            ]
        else:
            group_boundaries(n_bins, self.d)  # validates d against n_bins
            # Seeded mode: each trial's full in-group offset matrix is drawn
            # up front from its own generator, identical to the one-shot run.
            sources = [
                matrix_source(
                    seeded_group_choices(n_bins, self.d, n_balls, child.generator)
                )
                for child in batch.children
            ]
        if n_balls:
            batched_argmin_commit(loads, sources, n_balls, self.d)
        probes = n_balls * self.d
        return [
            AllocationResult(
                protocol=self.name,
                n_balls=n_balls,
                n_bins=n_bins,
                loads=loads[t].copy(),
                allocation_time=probes,
                costs=CostModel(probes=probes),
                params=self.params(),
            )
            for t in range(batch.trials)
        ]


def run_left(
    n_balls: int,
    n_bins: int,
    seed: SeedLike = None,
    *,
    d: int = 2,
    **params: Any,
) -> AllocationResult:
    """Functional one-liner for :class:`LeftProtocol`.

    Remaining keyword arguments are forwarded to the constructor, so wrapper
    runs agree with registry runs for the same parameter dictionary.
    """
    return LeftProtocol(d=d, **params).allocate(n_balls, n_bins, seed)
