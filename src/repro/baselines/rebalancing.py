"""Self-balancing reallocation in the spirit of Czumaj, Riley and Scheideler.

The paper's Table 1 cites the "perfectly balanced allocation" of Czumaj,
Riley and Scheideler [6]: first compute an initial allocation with greedy[d],
then iteratively perform *self-balancing steps* in which balls may switch
between their initial bin choices, reaching a maximum load of ``ceil(m/n)``
with ``O(m) + n^{O(1)}`` reallocations.  The original paper gives the
guarantee but this reproduction only needs the qualitative row of Table 1, so
we implement the natural local-search variant:

1. allocate with greedy[d], remembering every ball's ``d`` choices;
2. repeatedly sweep over the balls; a ball moves to one of its alternative
   choices whenever that strictly reduces the pair's load imbalance (the
   alternative's load is at least two below its current bin's load);
3. stop when a sweep performs no move or after ``max_passes`` sweeps.

Moves never increase the maximum load, every move strictly decreases the
quadratic potential (so termination is guaranteed), and reallocations are
counted separately from probes in the cost model, mirroring how Table 1
separates ``O(m) + n^{O(1)}`` reallocation cost from allocation time.

Both phases run through the chunked engine of :mod:`repro.baselines.engine`:
the greedy[d] init commits conflict-free chunks in bulk (first-minimum ties,
recording each ball's placement), and every sweep is a
:func:`~repro.baselines.engine.chunked_move_sweep` — a ball reads and writes
only its own candidate bins, so the same conflict-free rule makes the sweep
bit-identical to the per-ball loop kept as
:func:`repro.baselines.reference.reference_rebalancing`.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from repro.baselines.engine import chunked_argmin_commit, chunked_move_sweep
from repro.core.protocol import AllocationProtocol, register_protocol
from repro.core.result import AllocationResult
from repro.errors import ConfigurationError
from repro.runtime.costs import CostModel
from repro.runtime.probes import ProbeStream, RandomProbeStream
from repro.runtime.rng import SeedLike

__all__ = ["RebalancingProtocol", "run_rebalancing"]


@register_protocol
class RebalancingProtocol(AllocationProtocol):
    """greedy[d] followed by local self-balancing moves (CRS-style).

    Parameters
    ----------
    d:
        Number of choices per ball used both for the initial allocation and
        as the set of bins the ball may later move between.
    max_passes:
        Upper bound on the number of rebalancing sweeps (termination usually
        happens after a handful of sweeps).
    """

    name = "rebalancing"

    def __init__(self, d: int = 2, max_passes: int = 50) -> None:
        if d < 2:
            raise ConfigurationError(
                f"rebalancing needs at least d=2 choices per ball, got {d}"
            )
        if max_passes < 1:
            raise ConfigurationError(f"max_passes must be positive, got {max_passes}")
        self.d = int(d)
        self.max_passes = int(max_passes)

    def params(self) -> dict[str, Any]:
        return {"d": self.d, "max_passes": self.max_passes}

    def allocate(
        self,
        n_balls: int,
        n_bins: int,
        seed: SeedLike = None,
        *,
        probe_stream: ProbeStream | None = None,
        record_trace: bool = False,
    ) -> AllocationResult:
        self.validate_size(n_balls, n_bins)
        stream = probe_stream or RandomProbeStream(n_bins, seed)
        if stream.n_bins != n_bins:
            raise ConfigurationError(
                "probe_stream.n_bins does not match the requested n_bins"
            )

        loads = np.zeros(n_bins, dtype=np.int64)
        costs = CostModel()

        if n_balls:
            # Phase 1: greedy[d] initial allocation (ties to the first minimum;
            # the rebalancing phase removes any bias this introduces).  The
            # chunk source stashes each bulk draw so phase 2 can reuse the
            # choice matrix.
            choices = np.empty((n_balls, self.d), dtype=np.int64)
            placement = np.empty(n_balls, dtype=np.int64)

            def draw(start: int, count: int) -> np.ndarray:
                block = stream.take_matrix(count, self.d)
                choices[start : start + count] = block
                return block

            chunked_argmin_commit(
                loads, draw, n_balls, self.d, assignments=placement
            )
            costs.add_probes(n_balls * self.d)

            # Phase 2: self-balancing sweeps, one chunked pass per sweep.
            for _ in range(self.max_passes):
                moved = chunked_move_sweep(loads, choices, placement)
                costs.add_reallocations(moved)
                if moved == 0:
                    break

        return AllocationResult(
            protocol=self.name,
            n_balls=n_balls,
            n_bins=n_bins,
            loads=loads,
            allocation_time=costs.probes,
            costs=costs,
            params=self.params(),
        )


def run_rebalancing(
    n_balls: int,
    n_bins: int,
    seed: SeedLike = None,
    *,
    d: int = 2,
    **params: Any,
) -> AllocationResult:
    """Functional one-liner for :class:`RebalancingProtocol`.

    Remaining keyword arguments (``max_passes``, …) are forwarded to the
    constructor, so wrapper runs agree with registry runs for the same
    parameter dictionary.
    """
    return RebalancingProtocol(d=d, **params).allocate(n_balls, n_bins, seed)
