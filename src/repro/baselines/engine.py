"""Chunked exact vectorised commit engine for the Table-1 baselines.

Every d-choice baseline — greedy[d], left[d], the fresh-choice phase of the
(d,k)-memory protocol, and both phases of the CRS-style rebalancing — reduces
to the same sequential primitive: ball ``i`` inspects the current loads of
its ``d`` candidate bins and commits to the first least-loaded one (possibly
with a randomised tie-break).  Each decision depends on every earlier
placement, so the seed implementations ran one Python loop iteration per
ball, which dominated the wall-clock of every Table-1 sweep.

The engine here removes the per-ball loop without changing a single
placement.  Balls are processed in sequential *chunks*; a chunk's candidate
rows are bulk-drawn in one :meth:`~repro.runtime.probes.ProbeStream.take_matrix`
call, and the chunk is committed in sub-phases under the conflict-free rule
of :func:`repro.core.window.conflict_free_rows`:

* a ball whose candidate bins do not occur in any *earlier uncommitted*
  ball's candidate row sees exactly the loads the sequential process would
  show it — every earlier ball of the chunk can only place into its own
  candidate bins (disjoint from this row), and every already-committed later
  ball was itself required to be disjoint from this row when it committed;
* conflict-free balls therefore commit together in one vectorised argmin
  pass, and the remaining (conflicted) balls spill to the next sub-phase,
  re-evaluated against the updated loads.

The first uncommitted ball of a chunk is always conflict-free, so every
sub-phase makes progress and the sub-phase loop terminates.  The expected
spill fraction of a chunk of ``b`` balls is about ``b·d²/(2n)``; the default
chunk size of about ``n/d²`` (~50% spill, shrinking geometrically across
sub-phases) is the measured sweet spot between per-call NumPy overhead and
conflict-driven sub-phases.  The result — final loads, per-ball
assignments and probe-stream consumption — is **bit-identical** to the
per-ball loops (kept verbatim in :mod:`repro.baselines.reference`), which
``tests/test_baseline_equivalence.py`` certifies under shared
:class:`~repro.runtime.probes.FixedProbeStream` replay.

The same machinery powers the ``greedy``/``left`` policies of the batched
:class:`~repro.scheduler.dispatcher.Dispatcher`, so streamed workloads ride
the identical hot path.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.core.backend import active_backend
from repro.core.window import _conflict_free_rows_numpy
from repro.errors import ConfigurationError

__all__ = [
    "default_chunk_size",
    "commit_chunk",
    "chunked_argmin_commit",
    "batched_argmin_commit",
    "chunked_move_sweep",
    "matrix_source",
]

#: Bounds on the automatic chunk size: small chunks drown in per-call NumPy
#: overhead, huge chunks conflict so often that sub-phases degenerate.
_MIN_CHUNK = 32
_MAX_CHUNK = 1 << 14


def default_chunk_size(n_bins: int, d: int) -> int:
    """Heuristic balls-per-chunk: about ``n/d²`` keeps spills amortised.

    With ``b = n/d²`` the expected spill fraction ``b·d²/(2n)`` is about
    50%, and the spilled tail shrinks geometrically across sub-phases —
    measured to be the throughput sweet spot between per-call NumPy overhead
    (favouring large chunks) and conflict-driven sub-phases (favouring small
    ones).
    """
    if n_bins <= 0 or d < 1:
        raise ConfigurationError("need positive n_bins and d >= 1")
    return int(min(max(_MIN_CHUNK, n_bins // (d * d)), _MAX_CHUNK))


def commit_chunk(
    loads: np.ndarray,
    rows: np.ndarray,
    priorities: np.ndarray | None = None,
    assignments: np.ndarray | None = None,
    base: int = 0,
    weights: np.ndarray | None = None,
) -> None:
    """Commit one chunk of balls, bit-identical to the per-ball argmin loop.

    Parameters
    ----------
    loads:
        Current load vector; modified in place.
    rows:
        ``(b, d)`` candidate matrix of the chunk, in sequential ball order.
    priorities:
        Optional ``(b, d)`` tie-break priorities: among least-loaded
        candidates the position with the smallest priority wins (greedy[d]'s
        random tie-break).  ``None`` selects the first least-loaded position
        (greedy "first", left[d]'s always-go-left, rebalancing's init phase).
    assignments:
        Optional output vector; ball ``i`` of the chunk writes its bin to
        ``assignments[base + i]``.
    weights:
        Optional ``(b,)`` per-ball weight vector (weighted greedy[d]):
        ``loads`` must then be float and each committed ball adds its own
        weight instead of 1.  Additions into a bin happen in ball order
        (conflict-free balls sharing a bin commit in sequence, and
        ``np.add.at`` applies element by element), so the float accumulation
        is bit-identical to the sequential loop's.

    The commit runs on the active kernel backend (see
    :mod:`repro.core.backend`); :func:`_commit_chunk_numpy` is the default
    conflict-free sub-phase engine described above.
    """
    active_backend().commit_chunk(
        loads,
        rows,
        priorities=priorities,
        assignments=assignments,
        base=base,
        weights=weights,
    )


def _commit_chunk_numpy(
    loads: np.ndarray,
    rows: np.ndarray,
    priorities: np.ndarray | None = None,
    assignments: np.ndarray | None = None,
    base: int = 0,
    weights: np.ndarray | None = None,
) -> None:
    """The conflict-free sub-phase commit engine (see :func:`commit_chunk`)."""
    n_bins = loads.size
    block = rows
    pblock = priorities
    wblock = weights
    # Original in-chunk positions of `block`'s rows; None = identity (saves a
    # gather on the first sub-phase, which handles ~all of the chunk).
    indices: np.ndarray | None = None
    while block.shape[0]:
        free = _conflict_free_rows_numpy(block, n_bins)
        sub = block[free]
        if pblock is None:
            if sub.shape[1] == 1:
                targets = sub[:, 0]
            elif sub.shape[1] == 2:
                # The d=2 hot path: two 1-D gathers and a strict comparison
                # (ties keep position 0) beat the general axis-argmin.
                first, second = sub[:, 0], sub[:, 1]
                targets = np.where(loads[second] < loads[first], second, first)
            else:
                candidate_loads = loads[sub]
                # argmin returns the first (leftmost) minimum position.
                pos = np.argmin(candidate_loads, axis=1)
                targets = sub[np.arange(sub.shape[0]), pos]
        else:
            candidate_loads = loads[sub]
            min_load = candidate_loads.min(axis=1)
            tied = np.where(
                candidate_loads == min_load[:, None], pblock[free], np.inf
            )
            pos = np.argmin(tied, axis=1)
            targets = sub[np.arange(sub.shape[0]), pos]
        if wblock is not None:
            np.add.at(loads, targets, wblock[free])
        elif targets.size * 16 >= n_bins:
            loads += np.bincount(targets, minlength=n_bins)
        else:
            np.add.at(loads, targets, 1)
        if assignments is not None:
            ready = np.flatnonzero(free) if indices is None else indices[free]
            assignments[base + ready] = targets
        spilled = ~free
        if not spilled.any():
            break
        indices = np.flatnonzero(spilled) if indices is None else indices[spilled]
        block = block[spilled]
        if pblock is not None:
            pblock = pblock[spilled]
        if wblock is not None:
            wblock = wblock[spilled]


def matrix_source(choices: np.ndarray) -> Callable[[int, int], np.ndarray]:
    """Adapt a precomputed ``(m, d)`` candidate matrix to a chunk source."""

    def draw(start: int, count: int) -> np.ndarray:
        return choices[start : start + count]

    return draw


def chunked_argmin_commit(
    loads: np.ndarray,
    source: Callable[[int, int], np.ndarray],
    n_balls: int,
    d: int,
    *,
    priorities: np.ndarray | None = None,
    chunk_size: int | None = None,
    assignments: np.ndarray | None = None,
    weights: np.ndarray | None = None,
) -> None:
    """Place ``n_balls`` d-choice balls through the chunked commit engine.

    ``source(start, count)`` returns the ``(count, d)`` candidate rows of
    balls ``start … start+count-1`` — either a slice of a precomputed matrix
    (:func:`matrix_source`) or a fresh
    :meth:`~repro.runtime.probes.ProbeStream.take_matrix` draw, which keeps
    the probe-stream consumption order identical to a ball-by-ball loop.
    ``priorities`` (when given) must cover all ``n_balls`` rows; it is drawn
    up front from the auxiliary generator so vectorised and reference runs
    consume identical tie-break noise.  ``weights`` (when given) must cover
    all ``n_balls`` balls and switches the engine to weighted increments
    (see :func:`commit_chunk`).
    """
    if n_balls < 0:
        raise ConfigurationError(f"n_balls must be non-negative, got {n_balls}")
    if chunk_size is not None and chunk_size < 1:
        raise ConfigurationError(f"chunk_size must be positive, got {chunk_size}")
    chunk = chunk_size or default_chunk_size(loads.size, d)
    done = 0
    while done < n_balls:
        count = min(chunk, n_balls - done)
        rows = source(done, count)
        commit_chunk(
            loads,
            rows,
            priorities=None if priorities is None else priorities[done : done + count],
            assignments=assignments,
            base=done,
            weights=None if weights is None else weights[done : done + count],
        )
        done += count


def batched_argmin_commit(
    loads: np.ndarray,
    sources: "list[Callable[[int, int], np.ndarray]]",
    n_balls: int,
    d: int,
    *,
    priorities: "list[np.ndarray] | None" = None,
    chunk_size: int | None = None,
    weights: "list[np.ndarray] | None" = None,
) -> None:
    """Place ``n_balls`` d-choice balls for every trial of a batch at once.

    The trial-axis counterpart of :func:`chunked_argmin_commit`, built on the
    *combined-instance* embedding: trial ``t``'s candidate bins are offset by
    ``t * n_bins`` into one flat ``(trials * n_bins)``-bin load vector, and
    each chunk's per-trial candidate rows are interleaved **ball-major**
    (ball 0 of every trial, then ball 1, …) into a single ``(count * trials,
    d)`` matrix committed by the ordinary :func:`commit_chunk` — no second
    commit engine.  Bins of different trials never collide, so the sequential
    semantics of the combined instance restricted to trial ``t``'s rows *is*
    trial ``t``'s sequential process: per-trial loads (and weighted float
    accumulation order) are bit-identical to single-trial runs, which the
    test-suite certifies.

    Parameters
    ----------
    loads:
        ``(trials, n_bins)`` load matrix, modified in place (float when
        ``weights`` is given, exactly as in the single-trial engine).
    sources:
        One chunk source per trial; ``sources[t](start, count)`` returns the
        ``(count, d)`` candidate rows of balls ``start … start+count-1`` of
        trial ``t`` (a per-trial ``take_matrix`` draw or matrix slice, so
        each trial's probe consumption order is unchanged).
    priorities / weights:
        Optional per-trial lists of the full ``(n_balls, d)`` tie-break /
        ``(n_balls,)`` weight arrays, drawn up front per trial exactly as
        the single-trial implementations draw them.
    """
    if n_balls < 0:
        raise ConfigurationError(f"n_balls must be non-negative, got {n_balls}")
    if chunk_size is not None and chunk_size < 1:
        raise ConfigurationError(f"chunk_size must be positive, got {chunk_size}")
    loads = np.asarray(loads)
    if loads.ndim != 2 or loads.size == 0:
        raise ConfigurationError("loads must be a non-empty 2-D (trials x bins) array")
    if not loads.flags.c_contiguous:
        raise ConfigurationError("loads must be C-contiguous")
    n_trials, n_bins = loads.shape
    if len(sources) != n_trials:
        raise ConfigurationError(
            f"got {len(sources)} chunk sources for {n_trials} trial rows"
        )
    flat_loads = loads.reshape(-1)
    offsets = (np.arange(n_trials, dtype=np.int64) * n_bins)[:, None, None]
    chunk = chunk_size or default_chunk_size(n_bins, d)
    done = 0
    while done < n_balls:
        count = min(chunk, n_balls - done)
        stacked = np.stack(
            [np.asarray(source(done, count)) for source in sources]
        )
        combined = (stacked + offsets).swapaxes(0, 1).reshape(count * n_trials, d)
        big_priorities = None
        if priorities is not None:
            big_priorities = (
                np.stack([p[done : done + count] for p in priorities])
                .swapaxes(0, 1)
                .reshape(count * n_trials, d)
            )
        big_weights = None
        if weights is not None:
            big_weights = (
                np.stack([w[done : done + count] for w in weights])
                .swapaxes(0, 1)
                .reshape(count * n_trials)
            )
        # The combined-instance embedding is itself a vectorisation strategy,
        # so it always runs the NumPy commit kernel directly (drivers route
        # non-batching backends to the per-trial engines instead).
        _commit_chunk_numpy(
            flat_loads, combined, priorities=big_priorities, weights=big_weights
        )
        done += count


def chunked_move_sweep(
    loads: np.ndarray,
    choices: np.ndarray,
    placement: np.ndarray,
    *,
    chunk_size: int | None = None,
) -> int:
    """One vectorised self-balancing sweep over all balls, in ball order.

    Ball ``i`` moves from ``placement[i]`` to its least-loaded candidate when
    that is at least two below its current bin's load — exactly the
    sequential rule of the CRS-style rebalancing phase.  The conflict-free
    chunk rule applies unchanged: a ball reads only its candidate bins (its
    current bin is one of them), and every earlier uncommitted ball writes
    only within its own candidate row, so conflict-free balls decide and move
    together.  Returns the number of moves; ``loads`` and ``placement`` are
    updated in place.  The sweep runs on the active kernel backend
    (:func:`_move_sweep_numpy` is the default).
    """
    return active_backend().move_sweep(
        loads, choices, placement, chunk_size=chunk_size
    )


def _move_sweep_numpy(
    loads: np.ndarray,
    choices: np.ndarray,
    placement: np.ndarray,
    chunk_size: int | None = None,
) -> int:
    """The conflict-free chunked move sweep (see :func:`chunked_move_sweep`)."""
    n_balls, d = choices.shape
    chunk = chunk_size or default_chunk_size(loads.size, d)
    moved = 0
    for start in range(0, n_balls, chunk):
        rows = choices[start : start + chunk]
        pending = np.arange(rows.shape[0])
        while pending.size:
            free = _conflict_free_rows_numpy(rows[pending], loads.size)
            ready = pending[free]
            sub = rows[ready]
            candidate_loads = loads[sub]
            pos = np.argmin(candidate_loads, axis=1)
            best = sub[np.arange(sub.shape[0]), pos]
            current = placement[start + ready]
            move = candidate_loads[np.arange(sub.shape[0]), pos] + 2 <= loads[current]
            if move.any():
                loads -= np.bincount(current[move], minlength=loads.size)
                loads += np.bincount(best[move], minlength=loads.size)
                placement[start + ready[move]] = best[move]
                moved += int(move.sum())
            pending = pending[~free]
    return moved
