"""The (d, k)-memory protocol of Mitzenmacher, Prabhakar and Shah.

Every ball chooses ``d`` bins uniformly at random and additionally inherits
the ``k`` least loaded bins remembered from the previous ball's candidate set.
It is placed into the least loaded of the ``d + k`` candidates, and the ``k``
least loaded candidates (after placement) are passed on to the next ball.
For ``d = k = 1`` and ``m = n`` the maximum load is
``ln ln n / (2 ln Φ₂) + O(1)``, matching Vöcking's lower bound — the third row
of Table 1 — while using only ``Θ(m)`` random choices.

The remembered set holds **distinct** bins: after placement the candidate
bins are deduplicated (first occurrence kept) before the ``k`` least loaded
are selected.  The seed implementation remembered the raw candidate
positions, so a fresh choice colliding with a remembered bin could fill
several memory slots with the same bin and silently shrink the effective
``d + k`` candidate diversity below what the Mitzenmacher–Prabhakar–Shah
analysis assumes (``tests/test_memory.py`` carries the regression).

The memory hand-off makes every decision depend on the previous ball's full
candidate set, so the hand-off itself stays sequential; the chunked engine
structure still applies: each chunk's fresh choices are bulk-drawn with
:meth:`~repro.runtime.probes.ProbeStream.take_matrix` (consumption order
identical to a per-ball loop) and the hand-off runs over plain Python ints,
which is several times faster than the per-ball NumPy indexing of the seed
loop (kept as :func:`repro.baselines.reference.reference_memory`).
"""

from __future__ import annotations

from typing import Any

import numpy as np

from repro.core.protocol import AllocationProtocol, register_protocol
from repro.core.result import AllocationResult
from repro.core.session import ProtocolSession
from repro.errors import ConfigurationError
from repro.runtime.costs import CostModel
from repro.runtime.probes import ProbeStream, RandomProbeStream
from repro.runtime.rng import SeedLike

__all__ = [
    "MemoryProtocol",
    "run_memory",
    "memory_hand_off",
    "chunked_memory_hand_off",
]

#: Balls per bulk fresh-choice draw; the hand-off is sequential either way,
#: so the chunk only bounds the size of each ``take_matrix`` call.
_FRESH_CHUNK = 4096


def memory_hand_off(
    counts: list[int],
    fresh_rows: list[list[int]],
    memory: list[int],
    k: int,
    assignments: list[int] | None = None,
) -> list[int]:
    """Run the sequential (d,k)-memory hand-off over one chunk of balls.

    ``counts`` (per-bin loads, mutated in place) and the returned memory are
    plain Python lists — the hot loop touches ``d + k`` scalars per ball.
    Candidates are the fresh row followed by the remembered bins; the first
    least-loaded candidate wins, and the ``k`` least loaded *distinct*
    candidate bins (stable order: candidate order breaks load ties) are
    remembered for the next ball.  The dispatcher's ``memory`` policy and
    :class:`MemoryProtocol` share this loop so both stay bit-identical to
    :func:`repro.baselines.reference.reference_memory`.
    """
    for row in fresh_rows:
        candidates = row + memory
        best = candidates[0]
        best_load = counts[best]
        for bin_index in candidates[1:]:
            load = counts[bin_index]
            if load < best_load:
                best, best_load = bin_index, load
        counts[best] = best_load + 1
        if assignments is not None:
            assignments.append(best)
        if k:
            seen: set[int] = set()
            unique = [
                b for b in candidates if not (b in seen or seen.add(b))
            ]
            unique.sort(key=counts.__getitem__)  # stable: ties keep cand order
            memory = unique[:k]
    return memory


def chunked_memory_hand_off(
    stream: ProbeStream,
    counts: list[int],
    memory: list[int],
    n_balls: int,
    d: int,
    k: int,
    assignments: list[int] | None = None,
) -> list[int]:
    """Drive :func:`memory_hand_off` over ``n_balls`` chunked fresh draws.

    Each chunk's ``d`` fresh choices come from one bulk
    :meth:`~repro.runtime.probes.ProbeStream.take_matrix` call (consumption
    order identical to a per-ball loop).  This is the single driver behind
    :class:`MemoryProtocol` and the dispatcher's ``"memory"`` policy, so the
    two cannot drift apart in how they chunk the stream.  Returns the new
    remembered set; ``counts`` (and ``assignments``) are mutated in place.
    """
    placed = 0
    while placed < n_balls:
        count = min(_FRESH_CHUNK, n_balls - placed)
        fresh = stream.take_matrix(count, d).tolist()
        memory = memory_hand_off(counts, fresh, memory, k, assignments=assignments)
        placed += count
    return memory


@register_protocol
class MemoryProtocol(AllocationProtocol):
    """(d, k)-memory allocation.

    Parameters
    ----------
    d:
        Number of fresh uniform choices per ball.
    k:
        Number of bins remembered from the previous ball.
    """

    name = "memory"
    streaming = True

    def __init__(self, d: int = 1, k: int = 1) -> None:
        if d < 1:
            raise ConfigurationError(f"d must be at least 1, got {d}")
        if k < 0:
            raise ConfigurationError(f"k must be non-negative, got {k}")
        self.d = int(d)
        self.k = int(k)

    def params(self) -> dict[str, Any]:
        return {"d": self.d, "k": self.k}

    def begin(
        self,
        n_balls: int,
        n_bins: int,
        seed: SeedLike = None,
        *,
        probe_stream: ProbeStream | None = None,
        record_trace: bool = False,
    ) -> "_MemorySession":
        self.validate_size(n_balls, n_bins)
        stream = probe_stream or RandomProbeStream(n_bins, seed)
        return _MemorySession(self, n_balls, n_bins, stream)

    def allocate(
        self,
        n_balls: int,
        n_bins: int,
        seed: SeedLike = None,
        *,
        probe_stream: ProbeStream | None = None,
        record_trace: bool = False,
    ) -> AllocationResult:
        self.validate_size(n_balls, n_bins)
        stream = probe_stream or RandomProbeStream(n_bins, seed)
        if stream.n_bins != n_bins:
            raise ConfigurationError(
                "probe_stream.n_bins does not match the requested n_bins"
            )

        loads = np.zeros(n_bins, dtype=np.int64)
        if n_balls:
            counts = loads.tolist()
            chunked_memory_hand_off(stream, counts, [], n_balls, self.d, self.k)
            loads = np.asarray(counts, dtype=np.int64)

        probes = n_balls * self.d
        return AllocationResult(
            protocol=self.name,
            n_balls=n_balls,
            n_bins=n_bins,
            loads=loads,
            allocation_time=probes,
            costs=CostModel(probes=probes),
            params=self.params(),
        )


class _MemorySession(ProtocolSession):
    """Streaming (d,k)-memory: the remembered set persists across steps.

    The hand-off loop and its fresh-draw chunking are shared with the
    one-shot run (:func:`chunked_memory_hand_off` consumes the stream in the
    same row-major order for any split), so stepped runs are bit-identical.
    """

    def __init__(self, protocol, n_balls, n_bins, stream) -> None:
        super().__init__(protocol, n_balls, n_bins, stream)
        self._counts: list[int] = [0] * n_bins
        self._memory: list[int] = []

    @property
    def loads(self) -> np.ndarray:
        return np.asarray(self._counts, dtype=np.int64)

    @property
    def probes(self) -> int:
        return self.placed * self.protocol.d

    def _place(self, k: int) -> None:
        self._memory = chunked_memory_hand_off(
            self.stream, self._counts, self._memory, k, self.protocol.d,
            self.protocol.k,
        )

    def _finalize(self) -> AllocationResult:
        probes = self.n_balls * self.protocol.d
        return AllocationResult(
            protocol=self.protocol.name,
            n_balls=self.n_balls,
            n_bins=self.n_bins,
            loads=np.asarray(self._counts, dtype=np.int64),
            allocation_time=probes,
            costs=CostModel(probes=probes),
            params=self.protocol.params(),
        )


def run_memory(
    n_balls: int,
    n_bins: int,
    seed: SeedLike = None,
    *,
    d: int = 1,
    k: int = 1,
    **params: Any,
) -> AllocationResult:
    """Functional one-liner for :class:`MemoryProtocol`.

    Remaining keyword arguments are forwarded to the constructor, so wrapper
    runs agree with registry runs for the same parameter dictionary.
    """
    return MemoryProtocol(d=d, k=k, **params).allocate(n_balls, n_bins, seed)
