"""The (d, k)-memory protocol of Mitzenmacher, Prabhakar and Shah.

Every ball chooses ``d`` bins uniformly at random and additionally inherits
the ``k`` least loaded bins remembered from the previous ball's candidate set.
It is placed into the least loaded of the ``d + k`` candidates, and the ``k``
least loaded candidates (after placement) are passed on to the next ball.
For ``d = k = 1`` and ``m = n`` the maximum load is
``ln ln n / (2 ln Φ₂) + O(1)``, matching Vöcking's lower bound — the third row
of Table 1 — while using only ``Θ(m)`` random choices.

The remembered set holds **distinct** bins: after placement the candidate
bins are deduplicated (first occurrence kept) before the ``k`` least loaded
are selected.  The seed implementation remembered the raw candidate
positions, so a fresh choice colliding with a remembered bin could fill
several memory slots with the same bin and silently shrink the effective
``d + k`` candidate diversity below what the Mitzenmacher–Prabhakar–Shah
analysis assumes (``tests/test_memory.py`` carries the regression).

The hand-off makes every decision depend on the previous ball's full
candidate set, but the per-ball loop is gone for the common configurations:
placements run through the chunked provisional-simulation engine of
:mod:`repro.baselines.memory_engine` (guess the placements, reconstruct
every candidate load under the guess, replay the remembered-bin recurrence
in closed form, certify-and-iterate to a fixpoint) — bit-identical to the
sequential rule, which is kept as
:func:`repro.baselines.reference.reference_memory` (the per-ball oracle) and
:func:`~repro.baselines.memory_engine.memory_hand_off` (the scalar
spill/fallback rule shared with the dispatcher's small-burst path).

With ``record_trace=True`` the run records one
:class:`~repro.runtime.trace.StageRecord` per stage of ``n`` balls — load
extremes, smoothness potentials and a snapshot of the remembered set at
each stage boundary — identically for one-shot and stepped runs.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from repro.baselines.memory_engine import (  # noqa: F401  (re-exported API)
    chunked_memory_commit,
    chunked_memory_hand_off,
    memory_hand_off,
)
from repro.core.potentials import (
    DEFAULT_EPSILON,
    exponential_potential,
    quadratic_potential,
)
from repro.core.protocol import AllocationProtocol, register_protocol
from repro.core.result import AllocationResult
from repro.core.session import ProtocolSession
from repro.errors import ConfigurationError
from repro.runtime.costs import CostModel
from repro.runtime.probes import ProbeStream, RandomProbeStream
from repro.runtime.rng import SeedLike
from repro.runtime.trace import StageRecord, Trace

__all__ = [
    "MemoryProtocol",
    "run_memory",
    "memory_hand_off",
    "chunked_memory_hand_off",
]


@register_protocol
class MemoryProtocol(AllocationProtocol):
    """(d, k)-memory allocation.

    Parameters
    ----------
    d:
        Number of fresh uniform choices per ball.
    k:
        Number of bins remembered from the previous ball.

    Notes
    -----
    ``batches`` stays ``False``: each ball's remembered bins chain through
    every previous placement (a sequential data dependence the provisional
    engine resolves per trial, and the d>1/k>=2 regimes are deliberately
    scalar per the roadmap), so multi-trial batches honestly run through the
    base-class per-trial :meth:`~repro.core.protocol.AllocationProtocol.allocate_batch`
    loop rather than a second trial-axis engine.
    """

    name = "memory"
    streaming = True

    def __init__(self, d: int = 1, k: int = 1) -> None:
        if d < 1:
            raise ConfigurationError(f"d must be at least 1, got {d}")
        if k < 0:
            raise ConfigurationError(f"k must be non-negative, got {k}")
        self.d = int(d)
        self.k = int(k)

    def params(self) -> dict[str, Any]:
        return {"d": self.d, "k": self.k}

    def begin(
        self,
        n_balls: int,
        n_bins: int,
        seed: SeedLike = None,
        *,
        probe_stream: ProbeStream | None = None,
        record_trace: bool = False,
    ) -> "_MemorySession":
        self.validate_size(n_balls, n_bins)
        stream = probe_stream or RandomProbeStream(n_bins, seed)
        return _MemorySession(self, n_balls, n_bins, stream, record_trace)

    def allocate(
        self,
        n_balls: int,
        n_bins: int,
        seed: SeedLike = None,
        *,
        probe_stream: ProbeStream | None = None,
        record_trace: bool = False,
    ) -> AllocationResult:
        # One code path: the one-shot run is the streaming session driven to
        # completion, so any step split is bit-identical by construction.
        return self.begin(
            n_balls,
            n_bins,
            seed,
            probe_stream=probe_stream,
            record_trace=record_trace,
        ).result()


class _MemorySession(ProtocolSession):
    """Streaming (d,k)-memory: the remembered set persists across steps.

    Each ``place`` call drives the provisional-simulation engine over the
    next slice; the engine's state between calls is exactly the sequential
    protocol's (loads plus the remembered set), so any split of the balls
    into steps is bit-identical to the one-shot run.  In trace mode the
    slices are aligned to the stage boundaries of ``n`` balls, so stepped
    runs record the same :class:`~repro.runtime.trace.StageRecord` rows.
    """

    def __init__(self, protocol, n_balls, n_bins, stream, record_trace) -> None:
        super().__init__(protocol, n_balls, n_bins, stream)
        self._loads = np.zeros(n_bins, dtype=np.int64)
        self._memory: list[int] = []
        self.trace = Trace() if record_trace else None

    @property
    def loads(self) -> np.ndarray:
        return self._loads

    @property
    def probes(self) -> int:
        return self.placed * self.protocol.d

    def _place(self, count: int) -> None:
        if self.trace is None:
            self._memory = chunked_memory_commit(
                self.stream,
                self._loads,
                self._memory,
                count,
                self.protocol.d,
                self.protocol.k,
            )
            return
        n = self.n_bins
        done = 0
        while done < count:
            i = self.placed + done + 1  # 1-indexed next ball
            stage_last_ball = ((i - 1) // n + 1) * n
            seg = min(count - done, stage_last_ball - i + 1)
            self._memory = chunked_memory_commit(
                self.stream,
                self._loads,
                self._memory,
                seg,
                self.protocol.d,
                self.protocol.k,
            )
            done += seg
            balls_so_far = self.placed + done
            if balls_so_far == min(stage_last_ball, self.n_balls):
                # The stage (or the final partial stage) just completed.
                stage = (i - 1) // n
                first_ball = stage * n + 1
                in_stage = balls_so_far - first_ball + 1
                self.trace.append(
                    StageRecord(
                        stage=stage,
                        balls_placed=in_stage,
                        probes=in_stage * self.protocol.d,
                        max_load=int(self._loads.max()),
                        min_load=int(self._loads.min()),
                        quadratic_potential=quadratic_potential(
                            self._loads, balls_so_far
                        ),
                        exponential_potential=exponential_potential(
                            self._loads, balls_so_far, DEFAULT_EPSILON
                        ),
                        remembered=tuple(int(b) for b in self._memory),
                    )
                )

    def _finalize(self) -> AllocationResult:
        probes = self.n_balls * self.protocol.d
        return AllocationResult(
            protocol=self.protocol.name,
            n_balls=self.n_balls,
            n_bins=self.n_bins,
            loads=self._loads,
            allocation_time=probes,
            costs=CostModel(probes=probes),
            trace=self.trace,
            params=self.protocol.params(),
        )


def run_memory(
    n_balls: int,
    n_bins: int,
    seed: SeedLike = None,
    *,
    d: int = 1,
    k: int = 1,
    **params: Any,
) -> AllocationResult:
    """Functional one-liner for :class:`MemoryProtocol`.

    Remaining keyword arguments are forwarded to the constructor, so wrapper
    runs agree with registry runs for the same parameter dictionary.
    """
    return MemoryProtocol(d=d, k=k, **params).allocate(n_balls, n_bins, seed)
