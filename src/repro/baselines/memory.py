"""The (d, k)-memory protocol of Mitzenmacher, Prabhakar and Shah.

Every ball chooses ``d`` bins uniformly at random and additionally inherits
the ``k`` least loaded bins remembered from the previous ball's candidate set.
It is placed into the least loaded of the ``d + k`` candidates, and the ``k``
least loaded candidates (after placement) are passed on to the next ball.
For ``d = k = 1`` and ``m = n`` the maximum load is
``ln ln n / (2 ln Φ₂) + O(1)``, matching Vöcking's lower bound — the third row
of Table 1 — while using only ``Θ(m)`` random choices.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from repro.core.protocol import AllocationProtocol, register_protocol
from repro.core.result import AllocationResult
from repro.errors import ConfigurationError
from repro.runtime.costs import CostModel
from repro.runtime.probes import ProbeStream, RandomProbeStream
from repro.runtime.rng import SeedLike

__all__ = ["MemoryProtocol", "run_memory"]


@register_protocol
class MemoryProtocol(AllocationProtocol):
    """(d, k)-memory allocation.

    Parameters
    ----------
    d:
        Number of fresh uniform choices per ball.
    k:
        Number of bins remembered from the previous ball.
    """

    name = "memory"

    def __init__(self, d: int = 1, k: int = 1) -> None:
        if d < 1:
            raise ConfigurationError(f"d must be at least 1, got {d}")
        if k < 0:
            raise ConfigurationError(f"k must be non-negative, got {k}")
        self.d = int(d)
        self.k = int(k)

    def params(self) -> dict[str, Any]:
        return {"d": self.d, "k": self.k}

    def allocate(
        self,
        n_balls: int,
        n_bins: int,
        seed: SeedLike = None,
        *,
        probe_stream: ProbeStream | None = None,
        record_trace: bool = False,
    ) -> AllocationResult:
        self.validate_size(n_balls, n_bins)
        stream = probe_stream or RandomProbeStream(n_bins, seed)
        if stream.n_bins != n_bins:
            raise ConfigurationError(
                "probe_stream.n_bins does not match the requested n_bins"
            )

        loads = np.zeros(n_bins, dtype=np.int64)
        memory: np.ndarray = np.empty(0, dtype=np.int64)
        if n_balls:
            fresh = stream.take(n_balls * self.d).reshape(n_balls, self.d)
            for i in range(n_balls):
                candidates = np.concatenate((fresh[i], memory))
                candidate_loads = loads[candidates]
                target = candidates[int(np.argmin(candidate_loads))]
                loads[target] += 1
                if self.k:
                    # Remember the k least loaded candidates *after* placement.
                    post_loads = loads[candidates]
                    keep = np.argsort(post_loads, kind="stable")[: self.k]
                    memory = candidates[keep]

        probes = n_balls * self.d
        return AllocationResult(
            protocol=self.name,
            n_balls=n_balls,
            n_bins=n_bins,
            loads=loads,
            allocation_time=probes,
            costs=CostModel(probes=probes),
            params=self.params(),
        )


def run_memory(
    n_balls: int, n_bins: int, seed: SeedLike = None, *, d: int = 1, k: int = 1
) -> AllocationResult:
    """Functional one-liner for :class:`MemoryProtocol`."""
    return MemoryProtocol(d=d, k=k).allocate(n_balls, n_bins, seed)
