"""greedy[d]: the d-choice protocol of Azar, Broder, Karlin and Upfal.

Every ball samples ``d`` bins independently and uniformly at random and is
placed into the least loaded of them (ties broken uniformly at random).  For
``m = n`` the maximum load is ``ln ln n / ln d + Θ(1)`` w.h.p.; Berenbrink,
Czumaj, Steger and Vöcking extend this to the heavily loaded case, giving
``m/n + ln ln n / ln d + Θ(1)`` — the first two rows of Table 1.  The
allocation time is exactly ``d·m`` probes.

Placement decisions are inherently sequential (each depends on the loads
produced by all previous balls), but the per-ball Python loop of the seed
implementation (kept as :func:`repro.baselines.reference.reference_greedy`)
is gone: balls are placed through the chunked commit engine of
:mod:`repro.baselines.engine`, which bulk-draws each chunk's ``d`` choices
with :meth:`~repro.runtime.probes.ProbeStream.take_matrix` and commits all
conflict-free balls of a chunk in one vectorised pass.  The outcome is
bit-identical to the sequential loop for the same probe stream and seed.

Replay contract
---------------
The random tie-break draws one ``(m, d)`` priority matrix, before any
placements, from ``stream.derive_generator(seed)``: a spawned child of the
probe generator for seeded runs (so tie noise is a pure function of the seed,
independent of probe consumption), and a generator seeded by ``seed`` — or
the documented fallback :data:`repro.runtime.probes.AUX_SEED` — for replay
streams.  The seed implementation instead reused the probe generator (after
exhausting it) and fell back to a hard-coded ``default_rng(0)`` for non-random
streams, which coupled tie randomness to the stream *type*; any two
implementations given the same stream and seed now agree bit-for-bit.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from repro.baselines.engine import chunked_argmin_commit
from repro.core.protocol import AllocationProtocol, register_protocol
from repro.core.result import AllocationResult
from repro.errors import ConfigurationError
from repro.runtime.costs import CostModel
from repro.runtime.probes import ProbeStream, RandomProbeStream
from repro.runtime.rng import SeedLike

__all__ = ["GreedyProtocol", "run_greedy"]


@register_protocol
class GreedyProtocol(AllocationProtocol):
    """greedy[d] allocation.

    Parameters
    ----------
    d:
        Number of uniform choices per ball (``d >= 1``).  ``d = 1`` degrades
        to single-choice; ``d = 2`` is the classical "power of two choices".
    tie_break:
        ``"random"`` (default, as in Azar et al.) or ``"first"`` (take the
        first minimum among the sampled choices; useful for deterministic
        tests).
    """

    name = "greedy"

    def __init__(self, d: int = 2, tie_break: str = "random") -> None:
        if d < 1:
            raise ConfigurationError(f"d must be at least 1, got {d}")
        if tie_break not in ("random", "first"):
            raise ConfigurationError(
                f"tie_break must be 'random' or 'first', got {tie_break!r}"
            )
        self.d = int(d)
        self.tie_break = tie_break

    def params(self) -> dict[str, Any]:
        return {"d": self.d, "tie_break": self.tie_break}

    def allocate(
        self,
        n_balls: int,
        n_bins: int,
        seed: SeedLike = None,
        *,
        probe_stream: ProbeStream | None = None,
        record_trace: bool = False,
    ) -> AllocationResult:
        self.validate_size(n_balls, n_bins)
        stream = probe_stream or RandomProbeStream(n_bins, seed)
        if stream.n_bins != n_bins:
            raise ConfigurationError(
                "probe_stream.n_bins does not match the requested n_bins"
            )

        loads = np.zeros(n_bins, dtype=np.int64)
        if n_balls:
            priorities = None
            if self.tie_break == "random":
                # One up-front matrix from the auxiliary generator (see the
                # replay contract in the module docstring).
                priorities = stream.derive_generator(seed).random(
                    size=(n_balls, self.d)
                )
            chunked_argmin_commit(
                loads,
                lambda start, count: stream.take_matrix(count, self.d),
                n_balls,
                self.d,
                priorities=priorities,
            )

        probes = n_balls * self.d
        return AllocationResult(
            protocol=self.name,
            n_balls=n_balls,
            n_bins=n_bins,
            loads=loads,
            allocation_time=probes,
            costs=CostModel(probes=probes),
            params=self.params(),
        )


def run_greedy(
    n_balls: int,
    n_bins: int,
    seed: SeedLike = None,
    *,
    d: int = 2,
    **params: Any,
) -> AllocationResult:
    """Functional one-liner for :class:`GreedyProtocol`.

    All remaining keyword arguments (``tie_break``, …) are forwarded to the
    constructor, so wrapper runs agree with registry runs for the same
    parameter dictionary.
    """
    return GreedyProtocol(d=d, **params).allocate(n_balls, n_bins, seed)
