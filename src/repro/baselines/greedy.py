"""greedy[d]: the d-choice protocol of Azar, Broder, Karlin and Upfal.

Every ball samples ``d`` bins independently and uniformly at random and is
placed into the least loaded of them (ties broken uniformly at random).  For
``m = n`` the maximum load is ``ln ln n / ln d + Θ(1)`` w.h.p.; Berenbrink,
Czumaj, Steger and Vöcking extend this to the heavily loaded case, giving
``m/n + ln ln n / ln d + Θ(1)`` — the first two rows of Table 1.  The
allocation time is exactly ``d·m`` probes.

Placement decisions are inherently sequential (each depends on the loads
produced by all previous balls), but the per-ball Python loop of the seed
implementation (kept as :func:`repro.baselines.reference.reference_greedy`)
is gone: balls are placed through the chunked commit engine of
:mod:`repro.baselines.engine`, which bulk-draws each chunk's ``d`` choices
with :meth:`~repro.runtime.probes.ProbeStream.take_matrix` and commits all
conflict-free balls of a chunk in one vectorised pass.  The outcome is
bit-identical to the sequential loop for the same probe stream and seed.

Replay contract
---------------
The random tie-break draws one ``(m, d)`` priority matrix, before any
placements, from ``stream.derive_generator(seed)``: a spawned child of the
probe generator for seeded runs (so tie noise is a pure function of the seed,
independent of probe consumption), and a generator seeded by ``seed`` — or
the documented fallback :data:`repro.runtime.probes.AUX_SEED` — for replay
streams.  The seed implementation instead reused the probe generator (after
exhausting it) and fell back to a hard-coded ``default_rng(0)`` for non-random
streams, which coupled tie randomness to the stream *type*; any two
implementations given the same stream and seed now agree bit-for-bit.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from repro.baselines.engine import batched_argmin_commit, chunked_argmin_commit
from repro.core.protocol import (
    AllocationProtocol,
    batch_streams,
    register_protocol,
)
from repro.core.result import AllocationResult
from repro.core.session import ProtocolSession
from repro.errors import ConfigurationError
from repro.runtime.costs import CostModel
from repro.runtime.probes import ProbeStream, RandomProbeStream
from repro.runtime.rng import SeedLike

__all__ = ["GreedyProtocol", "DChoiceSession", "run_greedy"]


class DChoiceSession(ProtocolSession):
    """Streaming d-choice commit session (greedy[d] / left[d] / weighted).

    ``source(start, count)`` returns the candidate rows of balls
    ``start … start+count-1`` (absolute indices over the whole run), so each
    :meth:`place` call drives :func:`~repro.baselines.engine.chunked_argmin_commit`
    over the next slice — the engine's chunk-partitioning invariance makes
    any split of ``place`` calls bit-identical to the one-shot run.
    Tie-break ``priorities`` (and weighted increments) are drawn up front by
    the caller, exactly as the one-shot implementations do.
    """

    def __init__(
        self,
        protocol,
        n_balls: int,
        n_bins: int,
        stream: ProbeStream,
        *,
        d: int,
        source,
        priorities=None,
        weights=None,
        chunk_size: int | None = None,
    ) -> None:
        super().__init__(protocol, n_balls, n_bins, stream)
        self.d = int(d)
        self._source = source
        self._priorities = priorities
        self._weights = weights
        self._chunk_size = chunk_size
        if weights is None:
            self._loads = np.zeros(n_bins, dtype=np.int64)
            self._counts = self._loads
        else:
            self._loads = np.zeros(n_bins, dtype=np.float64)
            self._counts = np.zeros(n_bins, dtype=np.int64)
        self.assignments = np.empty(n_balls, dtype=np.int64)

    @property
    def loads(self) -> np.ndarray:
        return self._counts

    @property
    def weighted_loads(self) -> np.ndarray | None:
        return self._loads if self._weights is not None else None

    @property
    def probes(self) -> int:
        return self.placed * self.d

    def _place(self, k: int) -> None:
        start = self.placed
        chunked_argmin_commit(
            self._loads,
            lambda done, count: self._source(start + done, count),
            k,
            self.d,
            priorities=None
            if self._priorities is None
            else self._priorities[start : start + k],
            chunk_size=self._chunk_size,
            assignments=self.assignments[start : start + k],
            weights=None
            if self._weights is None
            else self._weights[start : start + k],
        )
        if self._weights is not None:
            np.add.at(self._counts, self.assignments[start : start + k], 1)

    def _finalize(self) -> AllocationResult:
        probes = self.n_balls * self.d
        return AllocationResult(
            protocol=self.protocol.name,
            n_balls=self.n_balls,
            n_bins=self.n_bins,
            loads=self._counts,
            allocation_time=probes,
            costs=CostModel(probes=probes),
            params=self.protocol.params(),
        )


@register_protocol
class GreedyProtocol(AllocationProtocol):
    """greedy[d] allocation.

    Parameters
    ----------
    d:
        Number of uniform choices per ball (``d >= 1``).  ``d = 1`` degrades
        to single-choice; ``d = 2`` is the classical "power of two choices".
    tie_break:
        ``"random"`` (default, as in Azar et al.) or ``"first"`` (take the
        first minimum among the sampled choices; useful for deterministic
        tests).
    """

    name = "greedy"
    streaming = True
    batches = True

    def __init__(self, d: int = 2, tie_break: str = "random") -> None:
        if d < 1:
            raise ConfigurationError(f"d must be at least 1, got {d}")
        if tie_break not in ("random", "first"):
            raise ConfigurationError(
                f"tie_break must be 'random' or 'first', got {tie_break!r}"
            )
        self.d = int(d)
        self.tie_break = tie_break

    def params(self) -> dict[str, Any]:
        return {"d": self.d, "tie_break": self.tie_break}

    def begin(
        self,
        n_balls: int,
        n_bins: int,
        seed: SeedLike = None,
        *,
        probe_stream: ProbeStream | None = None,
        record_trace: bool = False,
    ) -> DChoiceSession:
        self.validate_size(n_balls, n_bins)
        stream = probe_stream or RandomProbeStream(n_bins, seed)
        priorities = None
        if self.tie_break == "random" and n_balls:
            priorities = stream.derive_generator(seed).random(size=(n_balls, self.d))
        return DChoiceSession(
            self,
            n_balls,
            n_bins,
            stream,
            d=self.d,
            source=lambda start, count: stream.take_matrix(count, self.d),
            priorities=priorities,
        )

    def allocate(
        self,
        n_balls: int,
        n_bins: int,
        seed: SeedLike = None,
        *,
        probe_stream: ProbeStream | None = None,
        record_trace: bool = False,
    ) -> AllocationResult:
        self.validate_size(n_balls, n_bins)
        stream = probe_stream or RandomProbeStream(n_bins, seed)
        if stream.n_bins != n_bins:
            raise ConfigurationError(
                "probe_stream.n_bins does not match the requested n_bins"
            )

        loads = np.zeros(n_bins, dtype=np.int64)
        if n_balls:
            priorities = None
            if self.tie_break == "random":
                # One up-front matrix from the auxiliary generator (see the
                # replay contract in the module docstring).
                priorities = stream.derive_generator(seed).random(
                    size=(n_balls, self.d)
                )
            chunked_argmin_commit(
                loads,
                lambda start, count: stream.take_matrix(count, self.d),
                n_balls,
                self.d,
                priorities=priorities,
            )

        probes = n_balls * self.d
        return AllocationResult(
            protocol=self.name,
            n_balls=n_balls,
            n_bins=n_bins,
            loads=loads,
            allocation_time=probes,
            costs=CostModel(probes=probes),
            params=self.params(),
        )

    def allocate_batch(
        self,
        n_balls: int,
        n_bins: int,
        seeds=None,
        *,
        probe_streams=None,
        record_trace: bool = False,
    ) -> "list[AllocationResult]":
        self.validate_size(n_balls, n_bins)
        batch = batch_streams(n_bins, seeds, probe_streams)
        loads = np.zeros((batch.trials, n_bins), dtype=np.int64)
        if n_balls:
            priorities = None
            if self.tie_break == "random":
                # One up-front matrix per trial from that trial's auxiliary
                # generator — the same single call (same spawn order) the
                # single-trial run makes on its own stream.
                seed_list = seeds if seeds is not None else [None] * batch.trials
                priorities = [
                    child.derive_generator(seed).random(size=(n_balls, self.d))
                    for child, seed in zip(batch.children, seed_list)
                ]
            sources = [
                lambda start, count, child=child: child.take_matrix(count, self.d)
                for child in batch.children
            ]
            batched_argmin_commit(
                loads, sources, n_balls, self.d, priorities=priorities
            )
        probes = n_balls * self.d
        return [
            AllocationResult(
                protocol=self.name,
                n_balls=n_balls,
                n_bins=n_bins,
                loads=loads[t].copy(),
                allocation_time=probes,
                costs=CostModel(probes=probes),
                params=self.params(),
            )
            for t in range(batch.trials)
        ]


def run_greedy(
    n_balls: int,
    n_bins: int,
    seed: SeedLike = None,
    *,
    d: int = 2,
    **params: Any,
) -> AllocationResult:
    """Functional one-liner for :class:`GreedyProtocol`.

    All remaining keyword arguments (``tie_break``, …) are forwarded to the
    constructor, so wrapper runs agree with registry runs for the same
    parameter dictionary.
    """
    return GreedyProtocol(d=d, **params).allocate(n_balls, n_bins, seed)
