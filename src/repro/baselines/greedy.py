"""greedy[d]: the d-choice protocol of Azar, Broder, Karlin and Upfal.

Every ball samples ``d`` bins independently and uniformly at random and is
placed into the least loaded of them (ties broken uniformly at random).  For
``m = n`` the maximum load is ``ln ln n / ln d + Θ(1)`` w.h.p.; Berenbrink,
Czumaj, Steger and Vöcking extend this to the heavily loaded case, giving
``m/n + ln ln n / ln d + Θ(1)`` — the first two rows of Table 1.  The
allocation time is exactly ``d·m`` probes.

The placement decisions are inherently sequential (each depends on the loads
produced by all previous balls), so the inner loop is a Python loop; the ``d``
choices of all balls are drawn in one vectorised call up front.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from repro.core.protocol import AllocationProtocol, register_protocol
from repro.core.result import AllocationResult
from repro.errors import ConfigurationError
from repro.runtime.costs import CostModel
from repro.runtime.probes import ProbeStream, RandomProbeStream
from repro.runtime.rng import SeedLike

__all__ = ["GreedyProtocol", "run_greedy"]


@register_protocol
class GreedyProtocol(AllocationProtocol):
    """greedy[d] allocation.

    Parameters
    ----------
    d:
        Number of uniform choices per ball (``d >= 1``).  ``d = 1`` degrades
        to single-choice; ``d = 2`` is the classical "power of two choices".
    tie_break:
        ``"random"`` (default, as in Azar et al.) or ``"first"`` (take the
        first minimum among the sampled choices; useful for deterministic
        tests).
    """

    name = "greedy"

    def __init__(self, d: int = 2, tie_break: str = "random") -> None:
        if d < 1:
            raise ConfigurationError(f"d must be at least 1, got {d}")
        if tie_break not in ("random", "first"):
            raise ConfigurationError(
                f"tie_break must be 'random' or 'first', got {tie_break!r}"
            )
        self.d = int(d)
        self.tie_break = tie_break

    def params(self) -> dict[str, Any]:
        return {"d": self.d, "tie_break": self.tie_break}

    def allocate(
        self,
        n_balls: int,
        n_bins: int,
        seed: SeedLike = None,
        *,
        probe_stream: ProbeStream | None = None,
        record_trace: bool = False,
    ) -> AllocationResult:
        self.validate_size(n_balls, n_bins)
        stream = probe_stream or RandomProbeStream(n_bins, seed)
        if stream.n_bins != n_bins:
            raise ConfigurationError(
                "probe_stream.n_bins does not match the requested n_bins"
            )

        loads = np.zeros(n_bins, dtype=np.int64)
        if n_balls:
            # Draw all d·m probes up front: ball i uses probes i·d … i·d+d-1,
            # in stream order, matching a ball-by-ball implementation exactly.
            choices = stream.take(n_balls * self.d).reshape(n_balls, self.d)
            tie_rng = (
                stream.generator
                if isinstance(stream, RandomProbeStream)
                else np.random.default_rng(0)
            )
            if self.tie_break == "random":
                # Pre-draw tie-breaking priorities; a fresh permutation per
                # ball would be equivalent but far slower.
                priorities = tie_rng.random(size=(n_balls, self.d))
            for i in range(n_balls):
                row = choices[i]
                candidate_loads = loads[row]
                min_load = candidate_loads.min()
                mask = candidate_loads == min_load
                if self.tie_break == "first" or mask.sum() == 1:
                    target = row[int(np.argmax(mask))]
                else:
                    tied = np.flatnonzero(mask)
                    target = row[tied[int(np.argmin(priorities[i][tied]))]]
                loads[target] += 1

        probes = n_balls * self.d
        return AllocationResult(
            protocol=self.name,
            n_balls=n_balls,
            n_bins=n_bins,
            loads=loads,
            allocation_time=probes,
            costs=CostModel(probes=probes),
            params=self.params(),
        )


def run_greedy(
    n_balls: int, n_bins: int, seed: SeedLike = None, *, d: int = 2
) -> AllocationResult:
    """Functional one-liner for :class:`GreedyProtocol`."""
    return GreedyProtocol(d=d).allocate(n_balls, n_bins, seed)
