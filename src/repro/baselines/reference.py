"""Ball-by-ball reference implementations of the Table-1 baselines.

This is the baseline analogue of :mod:`repro.core.reference` and
:mod:`repro.scheduler.reference`: one Python loop iteration per ball,
following each protocol's probing rule literally.  These are the seed
implementations of :mod:`repro.baselines` (with the memory-deduplication and
tie-break-generator fixes applied on both sides), kept so the test-suite can
certify that the chunked engine of :mod:`repro.baselines.engine` is an exact,
probe-for-probe reproduction of the sequential processes: both
implementations fed the same :class:`~repro.runtime.probes.FixedProbeStream`
(and the same ``seed``, which fully determines any auxiliary randomness — see
:meth:`~repro.runtime.probes.ProbeStream.derive_generator`) must produce
bit-identical loads, probe counts and reallocation counts.

Each function returns ``(loads, probes)`` — rebalancing additionally returns
the reallocation count — mirroring the tuple style of
:mod:`repro.core.reference`.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.left import (
    group_boundaries,
    replay_group_map,
    seeded_group_choices,
)
from repro.errors import ConfigurationError
from repro.runtime.probes import ProbeStream, RandomProbeStream
from repro.runtime.rng import SeedLike

__all__ = [
    "reference_greedy",
    "reference_left",
    "reference_memory",
    "reference_rebalancing",
]


def _resolve_stream(
    n_bins: int, seed: SeedLike, probe_stream: ProbeStream | None
) -> ProbeStream:
    if n_bins <= 0:
        raise ConfigurationError(f"n_bins must be positive, got {n_bins}")
    if probe_stream is not None:
        if probe_stream.n_bins != n_bins:
            raise ConfigurationError(
                "probe_stream.n_bins does not match the requested n_bins"
            )
        return probe_stream
    return RandomProbeStream(n_bins, seed)


def reference_greedy(
    n_balls: int,
    n_bins: int,
    seed: SeedLike = None,
    *,
    d: int = 2,
    tie_break: str = "random",
    probe_stream: ProbeStream | None = None,
) -> tuple[np.ndarray, int]:
    """greedy[d], one ball at a time: place into the least loaded of d draws.

    Follows the shared consumption contract: ball ``i`` consumes probes
    ``i·d … i·d+d-1`` from the stream, and the random tie-break uses one
    ``(n_balls, d)`` priority matrix drawn up front from
    ``stream.derive_generator(seed)``.
    """
    if n_balls < 0:
        raise ConfigurationError(f"n_balls must be non-negative, got {n_balls}")
    stream = _resolve_stream(n_bins, seed, probe_stream)
    loads = np.zeros(n_bins, dtype=np.int64)
    if n_balls == 0:
        return loads, 0
    priorities = None
    if tie_break == "random":
        priorities = stream.derive_generator(seed).random(size=(n_balls, d))
    for i in range(n_balls):
        row = stream.take(d)
        candidate_loads = loads[row]
        min_load = candidate_loads.min()
        mask = candidate_loads == min_load
        if priorities is None or mask.sum() == 1:
            target = row[int(np.argmax(mask))]
        else:
            tied = np.flatnonzero(mask)
            target = row[tied[int(np.argmin(priorities[i][tied]))]]
        loads[target] += 1
    return loads, n_balls * d


def reference_left(
    n_balls: int,
    n_bins: int,
    seed: SeedLike = None,
    *,
    d: int = 2,
    probe_stream: ProbeStream | None = None,
) -> tuple[np.ndarray, int]:
    """left[d], one ball at a time: one bin per group, leftmost minimum wins.

    With a probe stream the groups must be of equal size (``n_bins % d ==
    0``); the ``g``-th probe of a ball, uniform over ``{0, …, n-1}``, maps to
    the uniform in-group choice ``g·(n/d) + probe mod (n/d)``.  Without a
    stream the seeded float-offset sampling of the protocol is reproduced,
    which works for any group sizes.
    """
    if n_balls < 0:
        raise ConfigurationError(f"n_balls must be non-negative, got {n_balls}")
    group_boundaries(n_bins, d)  # validates the group split
    loads = np.zeros(n_bins, dtype=np.int64)
    if probe_stream is not None:
        group_base, size = replay_group_map(n_bins, d)
        stream = _resolve_stream(n_bins, seed, probe_stream)
        for _ in range(n_balls):
            row = group_base + stream.take(d) % size
            loads[row[int(np.argmin(loads[row]))]] += 1
        return loads, n_balls * d
    rng = RandomProbeStream(n_bins, seed).generator
    if n_balls:
        choices = seeded_group_choices(n_bins, d, n_balls, rng)
        for i in range(n_balls):
            row = choices[i]
            loads[row[int(np.argmin(loads[row]))]] += 1
    return loads, n_balls * d


def reference_memory(
    n_balls: int,
    n_bins: int,
    seed: SeedLike = None,
    *,
    d: int = 1,
    k: int = 1,
    probe_stream: ProbeStream | None = None,
) -> tuple[np.ndarray, int]:
    """(d,k)-memory, one ball at a time, with distinct remembered bins.

    Candidates are the ball's ``d`` fresh draws followed by the remembered
    bins; the first least-loaded candidate wins.  After placement the
    candidate *bins* are deduplicated (first occurrence kept) and the ``k``
    least loaded — stable, so candidate order breaks load ties — are
    remembered for the next ball.
    """
    if n_balls < 0:
        raise ConfigurationError(f"n_balls must be non-negative, got {n_balls}")
    stream = _resolve_stream(n_bins, seed, probe_stream)
    loads = np.zeros(n_bins, dtype=np.int64)
    memory: np.ndarray = np.empty(0, dtype=np.int64)
    for _ in range(n_balls):
        candidates = np.concatenate((stream.take(d), memory))
        target = candidates[int(np.argmin(loads[candidates]))]
        loads[target] += 1
        if k:
            _, first = np.unique(candidates, return_index=True)
            unique = candidates[np.sort(first)]
            keep = np.argsort(loads[unique], kind="stable")[:k]
            memory = unique[keep]
    return loads, n_balls * d


def reference_rebalancing(
    n_balls: int,
    n_bins: int,
    seed: SeedLike = None,
    *,
    d: int = 2,
    max_passes: int = 50,
    probe_stream: ProbeStream | None = None,
) -> tuple[np.ndarray, int, int]:
    """greedy[d] init (first-minimum ties) plus per-ball move sweeps.

    Returns ``(loads, probes, reallocations)``.
    """
    if n_balls < 0:
        raise ConfigurationError(f"n_balls must be non-negative, got {n_balls}")
    stream = _resolve_stream(n_bins, seed, probe_stream)
    loads = np.zeros(n_bins, dtype=np.int64)
    if n_balls == 0:
        return loads, 0, 0
    choices = np.empty((n_balls, d), dtype=np.int64)
    placement = np.empty(n_balls, dtype=np.int64)
    for i in range(n_balls):
        row = stream.take(d)
        choices[i] = row
        target = row[int(np.argmin(loads[row]))]
        placement[i] = target
        loads[target] += 1
    reallocations = 0
    for _ in range(max_passes):
        moved = 0
        for i in range(n_balls):
            current = placement[i]
            row = choices[i]
            best = row[int(np.argmin(loads[row]))]
            if loads[best] + 2 <= loads[current]:
                loads[current] -= 1
                loads[best] += 1
                placement[i] = best
                moved += 1
        reallocations += moved
        if moved == 0:
            break
    return loads, n_balls * d, reallocations
