"""Result records returned by every allocation protocol.

:class:`RunResult` is the root of the unified result hierarchy: every entry
point of the package — the sequential protocols, the weighted protocols
(:class:`~repro.core.weighted.WeightedRunResult`) and the batched job
dispatcher (:class:`~repro.scheduler.dispatcher.DispatchResult`) — returns a
:class:`RunResult` or a subclass of it, so downstream consumers (tables,
summaries, the experiment harness) handle every run the same way.
``AllocationResult`` is kept as a thin alias of :class:`RunResult` for
backwards compatibility.

Record schema (version 1)
-------------------------
:meth:`RunResult.as_record` flattens a result into a plain dict of
JSON-serialisable values — the wire format of the :mod:`repro.cluster`
JSONL streams, the rows the experiment runner summarises, and the unit of
``--resume``.  The schema is frozen and versioned so streamed output stays
stable across releases:

* ``schema_version`` — the integer :data:`RECORD_SCHEMA_VERSION`;
* ``kind`` — which result class produced the record (``"simulation"``,
  ``"weighted"``, ``"dispatch"``), routing :meth:`RunResult.from_record`;
* the identity fields ``protocol``, ``n_balls``, ``n_bins``,
  ``allocation_time`` and the full ``loads`` vector (a list of ints);
* derived summary statistics (``probes_per_ball``, ``max_load``,
  ``min_load``, ``gap``, ``quadratic_potential``) — redundant given
  ``loads`` but kept flat for tables and summaries;
* the cost breakdown as ``cost_<name>`` ints plus the
  ``cost_probe_checkpoints`` list;
* protocol parameters as ``param_<name>`` entries (JSON-safe by spec
  construction).

Subclasses extend the schema with their own fields (see
:meth:`~repro.core.weighted.WeightedRunResult.as_record` and
:meth:`~repro.scheduler.dispatcher.DispatchResult.as_record`) and register
their ``kind`` via :func:`register_record_kind`, so
``RunResult.from_record`` reconstructs the right class from any record.
The round trip ``RunResult.from_record(r.as_record()).as_record() ==
r.as_record()`` is exact — including across a JSON dump/load, since JSON
round-trips Python ints and floats losslessly — and is certified by
hypothesis for every subclass in ``tests/test_record_schema.py``.

Two views exist: ``as_record()`` (the full schema above) and
``as_record(arrays=False)`` — a compact summary without the array-valued
fields, for human-facing tables.  Only the full view is round-trippable;
``from_record`` rejects summaries with a clear message.  Traces are never
serialised: a ``record_trace`` run round-trips everything except its
``trace`` attribute.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Mapping

import numpy as np

from repro.core.potentials import (
    DEFAULT_EPSILON,
    load_gap,
    log_exponential_potential,
    quadratic_potential,
    smoothness_summary,
)
from repro.errors import ConfigurationError, ProtocolError
from repro.runtime.costs import CostModel
from repro.runtime.trace import Trace

__all__ = [
    "RECORD_SCHEMA_VERSION",
    "RunResult",
    "AllocationResult",
    "register_record_kind",
]

#: Version stamped into every record; bumped only with a documented
#: migration when the schema changes incompatibly.
RECORD_SCHEMA_VERSION = 1

#: Registry mapping a record's ``kind`` tag to the result class that
#: reconstructs it (populated by :func:`register_record_kind`).
_RECORD_KINDS: dict[str, type["RunResult"]] = {}


def register_record_kind(kind: str, cls: type["RunResult"]) -> None:
    """Register ``cls`` as the reconstructor of records tagged ``kind``."""
    existing = _RECORD_KINDS.get(kind)
    if existing is not None and existing is not cls:
        raise ConfigurationError(
            f"record kind {kind!r} is already registered to {existing.__name__}"
        )
    _RECORD_KINDS[kind] = cls


def _record_field(record: Mapping[str, Any], key: str) -> Any:
    try:
        return record[key]
    except KeyError:
        raise ConfigurationError(
            f"record.{key}: missing — not a full schema-v{RECORD_SCHEMA_VERSION} "
            "record (note that as_record(arrays=False) summaries are not "
            "round-trippable)"
        ) from None


@dataclass
class RunResult:
    """Outcome of allocating ``n_balls`` balls into ``n_bins`` bins.

    Attributes
    ----------
    protocol:
        Registry name of the protocol that produced the result (e.g.
        ``"adaptive"``, ``"threshold"``, ``"greedy"``).
    n_balls, n_bins:
        Problem size.
    loads:
        Final load vector (length ``n_bins``, sums to ``n_balls``).
    allocation_time:
        The paper's cost measure: number of random bin choices consumed.
    costs:
        Full cost breakdown (probes, reallocations, messages, rounds).
    trace:
        Optional per-stage trajectory (only recorded when requested).
    params:
        Protocol parameters used for the run (``d`` for greedy, the threshold
        offset for adaptive, …), for provenance in experiment outputs.
    """

    protocol: str
    n_balls: int
    n_bins: int
    loads: np.ndarray
    allocation_time: int
    costs: CostModel = field(default_factory=CostModel)
    trace: Trace | None = None
    params: dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        self.loads = np.asarray(self.loads, dtype=np.int64)
        if self.loads.ndim != 1 or self.loads.size != self.n_bins:
            raise ProtocolError(
                f"loads must be a vector of length {self.n_bins}, "
                f"got shape {self.loads.shape}"
            )
        if int(self.loads.sum()) != self.n_balls:
            raise ProtocolError(
                f"loads sum to {int(self.loads.sum())} but {self.n_balls} balls "
                "were supposed to be placed"
            )
        if self.allocation_time < 0:
            raise ProtocolError("allocation_time must be non-negative")

    # ------------------------------------------------------------------ #
    # Derived statistics
    # ------------------------------------------------------------------ #
    @property
    def max_load(self) -> int:
        """Maximum load of any bin (Table 1's second column)."""
        return int(self.loads.max()) if self.n_bins else 0

    @property
    def min_load(self) -> int:
        """Minimum load of any bin."""
        return int(self.loads.min()) if self.n_bins else 0

    @property
    def gap(self) -> int:
        """Max−min load gap (the smoothness measure of Corollary 3.5)."""
        return load_gap(self.loads)

    @property
    def average_load(self) -> float:
        """Average load ``m/n``."""
        return self.n_balls / self.n_bins

    @property
    def probes_per_ball(self) -> float:
        """Allocation time normalised by the number of balls.

        Theorem 3.1 predicts an ``O(1)`` value for ADAPTIVE; Theorem 4.1
        predicts a value converging to 1 for THRESHOLD.
        """
        if self.n_balls == 0:
            return 0.0
        return self.allocation_time / self.n_balls

    def quadratic_potential(self) -> float:
        """``Ψ`` of the final load vector."""
        return quadratic_potential(self.loads, self.n_balls)

    def log_exponential_potential(self, epsilon: float = DEFAULT_EPSILON) -> float:
        """``ln Φ`` of the final load vector (log-space for stability)."""
        return log_exponential_potential(self.loads, self.n_balls, epsilon)

    def smoothness(self) -> dict[str, float]:
        """All smoothness statistics of the final load vector."""
        return smoothness_summary(self.loads, self.n_balls)

    #: Tag stamped into records (see the module docstring); subclasses
    #: override it and register themselves via :func:`register_record_kind`.
    record_kind = "simulation"

    def as_record(self, arrays: bool = True) -> dict[str, Any]:
        """Flatten the result into the frozen, versioned record schema.

        With ``arrays=True`` (default) the record is the full schema-v1
        document — JSON-serialisable, exactly invertible by
        :meth:`from_record`.  ``arrays=False`` returns the compact summary
        view (no ``loads`` / ``cost_probe_checkpoints`` / subclass array
        fields) for human-facing tables; it is **not** round-trippable.
        """
        record: dict[str, Any] = {
            "schema_version": RECORD_SCHEMA_VERSION,
            "kind": type(self).record_kind,
            "protocol": self.protocol,
            "n_balls": int(self.n_balls),
            "n_bins": int(self.n_bins),
            "allocation_time": int(self.allocation_time),
            "probes_per_ball": float(self.probes_per_ball),
            "max_load": int(self.max_load),
            "min_load": int(self.min_load),
            "gap": int(self.gap),
            "quadratic_potential": float(self.quadratic_potential()),
        }
        record.update(
            {f"cost_{k}": int(v) for k, v in self.costs.as_dict().items()}
        )
        if arrays:
            record["loads"] = self.loads.tolist()
            record["cost_probe_checkpoints"] = [
                int(c) for c in self.costs.probe_checkpoints
            ]
        record.update({f"param_{k}": v for k, v in self.params.items()})
        return record

    @classmethod
    def _record_kwargs(cls, record: Mapping[str, Any]) -> dict[str, Any]:
        """Constructor kwargs recovered from a full record.

        Subclasses extend the returned dict with their own fields.  Derived
        statistics (``max_load``, ``gap``, …) are recomputed from ``loads``
        on construction, so they are ignored here.
        """
        costs = CostModel(
            probes=int(_record_field(record, "cost_probes")),
            reallocations=int(_record_field(record, "cost_reallocations")),
            messages=int(_record_field(record, "cost_messages")),
            rounds=int(_record_field(record, "cost_rounds")),
        )
        for checkpoint in _record_field(record, "cost_probe_checkpoints"):
            costs._probe_log.append(int(checkpoint))
        return {
            "protocol": _record_field(record, "protocol"),
            "n_balls": int(_record_field(record, "n_balls")),
            "n_bins": int(_record_field(record, "n_bins")),
            "loads": np.asarray(_record_field(record, "loads"), dtype=np.int64),
            "allocation_time": int(_record_field(record, "allocation_time")),
            "costs": costs,
            "params": {
                key[len("param_"):]: value
                for key, value in record.items()
                if key.startswith("param_")
            },
        }

    @classmethod
    def from_record(cls, record: Mapping[str, Any]) -> "RunResult":
        """Reconstruct a result from its :meth:`as_record` document.

        Called on :class:`RunResult` it routes to the subclass named by the
        record's ``kind`` tag; called on a subclass it additionally insists
        the record is of that kind.  Unknown extra keys (e.g. the ``shard``
        / ``trial`` provenance the cluster layer appends) are ignored, so
        streamed JSONL rows feed straight back in.  Raises
        :class:`~repro.errors.ConfigurationError` for malformed records:
        wrong ``schema_version``, unknown ``kind``, or missing fields.
        """
        if not isinstance(record, Mapping):
            raise ConfigurationError(
                f"record: expected a mapping, got {type(record).__name__}"
            )
        version = _record_field(record, "schema_version")
        if version != RECORD_SCHEMA_VERSION:
            raise ConfigurationError(
                f"record.schema_version: expected {RECORD_SCHEMA_VERSION}, "
                f"got {version!r}"
            )
        kind = _record_field(record, "kind")
        try:
            target = _RECORD_KINDS[kind]
        except KeyError:
            raise ConfigurationError(
                f"record.kind: unknown kind {kind!r}; "
                f"registered: {sorted(_RECORD_KINDS)}"
            ) from None
        if cls is not RunResult and target is not cls:
            raise ConfigurationError(
                f"record.kind: {kind!r} records reconstruct as "
                f"{target.__name__}, not {cls.__name__} "
                "(call RunResult.from_record to route by kind)"
            )
        return target(**target._record_kwargs(record))


#: Backwards-compatible alias: the base of the unified result hierarchy used
#: to be called ``AllocationResult``.
AllocationResult = RunResult

register_record_kind(RunResult.record_kind, RunResult)
