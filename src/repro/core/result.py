"""Result records returned by every allocation protocol.

:class:`RunResult` is the root of the unified result hierarchy: every entry
point of the package — the sequential protocols, the weighted protocols
(:class:`~repro.core.weighted.WeightedRunResult`) and the batched job
dispatcher (:class:`~repro.scheduler.dispatcher.DispatchResult`) — returns a
:class:`RunResult` or a subclass of it, so downstream consumers (tables,
summaries, the experiment harness) handle every run the same way.
``AllocationResult`` is kept as a thin alias of :class:`RunResult` for
backwards compatibility.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

import numpy as np

from repro.core.potentials import (
    DEFAULT_EPSILON,
    load_gap,
    log_exponential_potential,
    quadratic_potential,
    smoothness_summary,
)
from repro.errors import ProtocolError
from repro.runtime.costs import CostModel
from repro.runtime.trace import Trace

__all__ = ["RunResult", "AllocationResult"]


@dataclass
class RunResult:
    """Outcome of allocating ``n_balls`` balls into ``n_bins`` bins.

    Attributes
    ----------
    protocol:
        Registry name of the protocol that produced the result (e.g.
        ``"adaptive"``, ``"threshold"``, ``"greedy"``).
    n_balls, n_bins:
        Problem size.
    loads:
        Final load vector (length ``n_bins``, sums to ``n_balls``).
    allocation_time:
        The paper's cost measure: number of random bin choices consumed.
    costs:
        Full cost breakdown (probes, reallocations, messages, rounds).
    trace:
        Optional per-stage trajectory (only recorded when requested).
    params:
        Protocol parameters used for the run (``d`` for greedy, the threshold
        offset for adaptive, …), for provenance in experiment outputs.
    """

    protocol: str
    n_balls: int
    n_bins: int
    loads: np.ndarray
    allocation_time: int
    costs: CostModel = field(default_factory=CostModel)
    trace: Trace | None = None
    params: dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        self.loads = np.asarray(self.loads, dtype=np.int64)
        if self.loads.ndim != 1 or self.loads.size != self.n_bins:
            raise ProtocolError(
                f"loads must be a vector of length {self.n_bins}, "
                f"got shape {self.loads.shape}"
            )
        if int(self.loads.sum()) != self.n_balls:
            raise ProtocolError(
                f"loads sum to {int(self.loads.sum())} but {self.n_balls} balls "
                "were supposed to be placed"
            )
        if self.allocation_time < 0:
            raise ProtocolError("allocation_time must be non-negative")

    # ------------------------------------------------------------------ #
    # Derived statistics
    # ------------------------------------------------------------------ #
    @property
    def max_load(self) -> int:
        """Maximum load of any bin (Table 1's second column)."""
        return int(self.loads.max()) if self.n_bins else 0

    @property
    def min_load(self) -> int:
        """Minimum load of any bin."""
        return int(self.loads.min()) if self.n_bins else 0

    @property
    def gap(self) -> int:
        """Max−min load gap (the smoothness measure of Corollary 3.5)."""
        return load_gap(self.loads)

    @property
    def average_load(self) -> float:
        """Average load ``m/n``."""
        return self.n_balls / self.n_bins

    @property
    def probes_per_ball(self) -> float:
        """Allocation time normalised by the number of balls.

        Theorem 3.1 predicts an ``O(1)`` value for ADAPTIVE; Theorem 4.1
        predicts a value converging to 1 for THRESHOLD.
        """
        if self.n_balls == 0:
            return 0.0
        return self.allocation_time / self.n_balls

    def quadratic_potential(self) -> float:
        """``Ψ`` of the final load vector."""
        return quadratic_potential(self.loads, self.n_balls)

    def log_exponential_potential(self, epsilon: float = DEFAULT_EPSILON) -> float:
        """``ln Φ`` of the final load vector (log-space for stability)."""
        return log_exponential_potential(self.loads, self.n_balls, epsilon)

    def smoothness(self) -> dict[str, float]:
        """All smoothness statistics of the final load vector."""
        return smoothness_summary(self.loads, self.n_balls)

    def as_record(self) -> dict[str, Any]:
        """Flatten the result into a plain dict for tables/CSV export."""
        record: dict[str, Any] = {
            "protocol": self.protocol,
            "n_balls": self.n_balls,
            "n_bins": self.n_bins,
            "allocation_time": self.allocation_time,
            "probes_per_ball": self.probes_per_ball,
            "max_load": self.max_load,
            "min_load": self.min_load,
            "gap": self.gap,
            "quadratic_potential": self.quadratic_potential(),
        }
        record.update({f"cost_{k}": v for k, v in self.costs.as_dict().items()})
        record.update({f"param_{k}": v for k, v in self.params.items()})
        return record


#: Backwards-compatible alias: the base of the unified result hierarchy used
#: to be called ``AllocationResult``.
AllocationResult = RunResult
