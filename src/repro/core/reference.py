"""Straightforward ball-by-ball reference implementations.

These functions follow the pseudocode of Figures 1 and 2 of the paper
literally: one Python loop iteration per probe.  They are deliberately slow
and simple; the test-suite uses them (fed with a shared
:class:`~repro.runtime.probes.FixedProbeStream`) to certify that the
vectorised engines in :mod:`repro.core.adaptive` and
:mod:`repro.core.threshold` are exact, probe-for-probe reproductions of the
sequential processes.
"""

from __future__ import annotations

import numpy as np

from repro.core.thresholds import acceptance_limit
from repro.errors import ConfigurationError
from repro.runtime.probes import ProbeStream, RandomProbeStream
from repro.runtime.rng import SeedLike

__all__ = ["reference_adaptive", "reference_threshold"]


def _resolve_stream(
    n_bins: int, seed: SeedLike, probe_stream: ProbeStream | None
) -> ProbeStream:
    if probe_stream is not None:
        if probe_stream.n_bins != n_bins:
            raise ConfigurationError(
                "probe_stream.n_bins does not match the requested n_bins"
            )
        return probe_stream
    return RandomProbeStream(n_bins, seed)


def reference_adaptive(
    n_balls: int,
    n_bins: int,
    seed: SeedLike = None,
    *,
    probe_stream: ProbeStream | None = None,
    offset: int = 1,
) -> tuple[np.ndarray, int]:
    """Figure 1 of the paper, executed literally.

    Ball ``i`` (1-indexed) repeatedly samples bins until it finds one with
    load ``< i/n + offset`` and is placed there.

    Returns
    -------
    (loads, allocation_time)
    """
    if n_bins <= 0:
        raise ConfigurationError(f"n_bins must be positive, got {n_bins}")
    if n_balls < 0:
        raise ConfigurationError(f"n_balls must be non-negative, got {n_balls}")
    stream = _resolve_stream(n_bins, seed, probe_stream)
    loads = np.zeros(n_bins, dtype=np.int64)
    probes = 0
    for i in range(1, n_balls + 1):
        limit = acceptance_limit(i, n_bins, offset)
        while True:
            j = stream.take_one()
            probes += 1
            if loads[j] <= limit:
                loads[j] += 1
                break
    return loads, probes


def reference_threshold(
    n_balls: int,
    n_bins: int,
    seed: SeedLike = None,
    *,
    probe_stream: ProbeStream | None = None,
    offset: int = 1,
) -> tuple[np.ndarray, int]:
    """Figure 2 of the paper (the THRESHOLD protocol of Czumaj & Stemann).

    Every ball repeatedly samples bins until it finds one with load
    ``< m/n + offset``.

    Returns
    -------
    (loads, allocation_time)
    """
    if n_bins <= 0:
        raise ConfigurationError(f"n_bins must be positive, got {n_bins}")
    if n_balls < 0:
        raise ConfigurationError(f"n_balls must be non-negative, got {n_balls}")
    stream = _resolve_stream(n_bins, seed, probe_stream)
    loads = np.zeros(n_bins, dtype=np.int64)
    probes = 0
    limit = acceptance_limit(n_balls, n_bins, offset) if n_balls else 0
    for _ in range(n_balls):
        while True:
            j = stream.take_one()
            probes += 1
            if loads[j] <= limit:
                loads[j] += 1
                break
    return loads, probes
