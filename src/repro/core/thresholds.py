"""Exact integer arithmetic for the protocols' acceptance thresholds.

Both protocols accept a ball into a bin iff the bin's *current* load is
strictly below a threshold of the form ``k/n + offset`` (``k = i`` for
ADAPTIVE, ``k = m`` for THRESHOLD, ``offset = 1`` in the paper).  Because
loads are integers, the condition ``load < k/n + offset`` is equivalent to
``load ≤ ceil(k/n) + offset − 1``; we call that integer the *acceptance
limit*.  Doing this with integer arithmetic avoids floating-point edge cases
at stage boundaries (e.g. ``k`` an exact multiple of ``n``).

A useful consequence (used by the vectorised engines and by the analysis in
Section 3 of the paper): the acceptance limit of ADAPTIVE is constant within
each *stage* of ``n`` consecutive balls, because ``ceil(i/n) = s + 1`` for
every ball ``i`` in stage ``s`` (balls ``s·n+1 … (s+1)·n``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

from repro.errors import ConfigurationError

__all__ = [
    "ceil_div",
    "acceptance_limit",
    "max_final_load",
    "stage_of_ball",
    "StageWindow",
    "stage_windows",
]


def ceil_div(a: int, b: int) -> int:
    """Return ``ceil(a / b)`` for non-negative ``a`` and positive ``b``."""
    if b <= 0:
        raise ConfigurationError(f"divisor must be positive, got {b}")
    if a < 0:
        raise ConfigurationError(f"dividend must be non-negative, got {a}")
    return -(-a // b)


def acceptance_limit(k: int, n: int, offset: int = 1) -> int:
    """Largest current load at which a ball with threshold ``k/n + offset`` is accepted.

    Parameters
    ----------
    k:
        Numerator of the fractional part of the threshold: the ball index
        ``i`` for ADAPTIVE, the total number of balls ``m`` for THRESHOLD.
    n:
        Number of bins.
    offset:
        Additive constant of the threshold.  The paper uses ``offset = 1``;
        ``offset = 0`` gives the coupon-collector variant discussed in
        Section 2 (used as an ablation).

    Returns
    -------
    int
        The acceptance limit ``ceil(k/n) + offset − 1``: a ball is accepted
        into bin ``j`` iff ``load_j <= acceptance_limit(k, n, offset)``.
    """
    if n <= 0:
        raise ConfigurationError(f"n must be positive, got {n}")
    if k < 0:
        raise ConfigurationError(f"k must be non-negative, got {k}")
    return ceil_div(k, n) + offset - 1


def max_final_load(m: int, n: int, offset: int = 1) -> int:
    """Deterministic upper bound on the final maximum load.

    A ball is only ever accepted into a bin whose load is at most the
    acceptance limit, so the final load never exceeds the limit of the last
    ball plus one: ``ceil(m/n) + offset``.  With ``offset = 1`` this is the
    paper's ``ceil(m/n) + 1`` guarantee.
    """
    if m < 0:
        raise ConfigurationError(f"m must be non-negative, got {m}")
    if m == 0:
        return 0
    return acceptance_limit(m, n, offset) + 1


def stage_of_ball(i: int, n: int) -> int:
    """Zero-based stage index of ball ``i`` (balls are 1-indexed).

    Stage ``s`` covers balls ``s·n + 1 … (s+1)·n``.
    """
    if i <= 0:
        raise ConfigurationError(f"ball index must be positive, got {i}")
    if n <= 0:
        raise ConfigurationError(f"n must be positive, got {n}")
    return (i - 1) // n


@dataclass(frozen=True)
class StageWindow:
    """One stage of an ADAPTIVE run.

    Attributes
    ----------
    stage:
        Zero-based stage index.
    first_ball, last_ball:
        1-indexed (inclusive) range of balls placed during this stage.
    acceptance_limit:
        The constant acceptance limit shared by every ball in the stage.
    """

    stage: int
    first_ball: int
    last_ball: int
    acceptance_limit: int

    @property
    def n_balls(self) -> int:
        return self.last_ball - self.first_ball + 1


def stage_windows(m: int, n: int, offset: int = 1) -> Iterator[StageWindow]:
    """Yield the stages of an ADAPTIVE run of ``m`` balls into ``n`` bins.

    The final stage may be partial (fewer than ``n`` balls) when ``m`` is not
    a multiple of ``n``.
    """
    if m < 0:
        raise ConfigurationError(f"m must be non-negative, got {m}")
    if n <= 0:
        raise ConfigurationError(f"n must be positive, got {n}")
    first = 1
    stage = 0
    while first <= m:
        last = min(first + n - 1, m)
        yield StageWindow(
            stage=stage,
            first_ball=first,
            last_ball=last,
            acceptance_limit=acceptance_limit(last, n, offset),
        )
        first = last + 1
        stage += 1
