"""Chunked exact vectorised engine for weighted moving-threshold allocation.

The weighted ADAPTIVE rule (see :mod:`repro.core.weighted`) accepts ball
``i`` into bin ``j`` iff the bin's current *weight* is strictly below a
per-ball threshold ``T_i`` that moves with every ball (``W_i/n + w_max``).
Unlike the unit-weight protocols, whose acceptance limit is constant across a
whole stage (which is what :mod:`repro.core.window` exploits), here every
single placement shifts the threshold — which is why the seed implementation
ran one Python loop iteration per probe, the last per-ball hot loop in the
codebase.

The engine removes that loop without changing a single placement.  Balls are
processed in sequential *chunks*, and within a chunk the moving threshold is
bracketed by its chunk-start (conservative) and chunk-end (optimistic,
``T_hi``) values — thresholds are non-decreasing, so a bin at or above
``T_hi`` rejects every ball of the chunk.  Each chunk's probes are drawn in
one bulk :meth:`~repro.runtime.probes.ProbeStream.take` block and resolved
by *provisional exact simulation* (see :func:`_simulate_block`):

1. **Guess** — assume every probe not obviously rejected (bin already at
   ``T_hi``) is accepted.  That attributes each probe to a ball by
   cumulative count, which pins down both the exact weight every provisional
   acceptance adds and the exact threshold every probe is compared against.
2. **Verify** — a segmented prefix sum over the block's bin groups (the
   prefix-weight analogue of :func:`repro.core.window.occurrence_ranks`)
   yields each probe's load *at probe time* under the guess; comparing
   against the per-ball thresholds verifies or refutes every assumption in
   one vectorised pass.
3. **Iterate** — refuted probes flip to rejected and the simulation is
   re-verified; a fixpoint whose every status checks out *is* the sequential
   execution, by induction over probe order (a probe's outcome depends only
   on earlier probes).  Convergence is fast because a flip only perturbs the
   attribution of later probes by one ball (a threshold shift of
   ``w/n``).

Probes whose load lands within a tiny rounding margin of their threshold —
where the engine's partial-sum grouping could disagree with the sequential
accumulation by an ulp — are never decided vectorised: the block is
committed up to the first such probe, the tail handed back via
:meth:`~repro.runtime.probes.ProbeStream.give_back`, the single owning ball
resolved with the literal scalar rule, and the engine re-vectorises.
Committed per-bin additions are applied element-wise in ball order
(``np.add.at``), keeping every float accumulation bit-identical to the loop.
The result — loads, per-ball assignments and probe consumption — is
**bit-identical** to the ball-by-ball reference
(``tests/test_weighted_equivalence.py`` certifies this under shared
:class:`~repro.runtime.probes.FixedProbeStream` replay).

The default chunk size balances per-block NumPy overhead (favouring large
chunks) against guess quality — the further the threshold drifts within a
chunk, the more probes the optimistic first guess mispredicts (see
:func:`default_weighted_chunk_size`).  A *constant* threshold (the weighted
THRESHOLD protocol) makes the first guess near-perfect and the largest
chunks pay off.

Every probe loop in this module is guarded by ``max_probes``: a single ball
consuming more than the cap raises
:class:`~repro.errors.SimulationError` instead of spinning forever on a
probe source that never offers an acceptable bin.
"""

from __future__ import annotations

import math

import numpy as np

from repro.core.backend import active_backend
from repro.errors import ConfigurationError, SimulationError
from repro.runtime.probes import ProbeStream

__all__ = [
    "resolve_max_probes",
    "default_weighted_chunk_size",
    "adaptive_weighted_thresholds",
    "fixed_weighted_threshold",
    "sequential_weighted_place",
    "chunked_weighted_assign",
]

#: Relative margin around ``threshold - load`` inside which a probe is left
#: to the exact scalar rule.  The engine's segmented prefix sums accumulate
#: each bin's weights in the same order as the sequential process but with
#: different partial-sum grouping, so the two can disagree by a few ulps;
#: the margin (many orders of magnitude above that, many below any real
#: load gap) guarantees the vectorised classification never decides a
#: comparison the reference would decide the other way.
_PESSIMISM_SLACK = 1e-9

#: Bounds on the automatic chunk size (same rationale as the baseline
#: engine: tiny chunks drown in per-call overhead, huge chunks thrash on
#: fixpoint rounds as the in-chunk threshold drift mispredicts more probes).
_MIN_CHUNK = 64
_MAX_CHUNK = 1 << 13
#: Chunk size used when the threshold is constant across the whole run
#: (weighted THRESHOLD): the initial optimistic assumption is then almost
#: always right, so the largest chunk wins.
_CONSTANT_THRESHOLD_CHUNK = 1 << 13


def resolve_max_probes(max_probes: int | None, n_bins: int) -> int:
    """Return the per-ball probe cap, defaulting to a generous multiple of n.

    The weighted acceptance rules always leave at least one bin below the
    threshold, so a ball's probe count is geometric with success probability
    at least ``1/n``; ``100*n + 1000`` probes are exceeded with probability
    below ``e^-100`` per ball.  Hitting the cap therefore signals a probe
    source that cannot satisfy the rule (see
    :class:`~repro.errors.SimulationError`), not bad luck.
    """
    if max_probes is None:
        return 100 * n_bins + 1000
    if max_probes < 1:
        raise ConfigurationError(f"max_probes must be positive, got {max_probes}")
    return int(max_probes)


def default_weighted_chunk_size(n_bins: int, weights: np.ndarray) -> int:
    """Heuristic balls-per-chunk ``~8 * sqrt(n w_max / w_mean)``.

    A chunk of ``b`` balls moves the threshold by ``b*w_mean/n`` while the
    loads it probes are spread over a band of order ``w_max``, so the
    fraction of probes the optimistic first guess mispredicts — each
    mispredicted probe costs a fixpoint round or a scalar fallback — grows
    like ``b*w_mean/(n*w_max)``.  Scaling the chunk with
    ``sqrt(n*w_max/w_mean)`` keeps those rounds rare while amortising the
    per-block NumPy overhead; the constant was measured on the benchmark
    scale (1M balls / 10k bins).
    """
    if n_bins <= 0:
        raise ConfigurationError(f"n_bins must be positive, got {n_bins}")
    w_max = float(weights.max())
    w_mean = float(weights.mean())
    if w_mean <= 0.0:
        raise ConfigurationError("weights must be positive")
    size = 8 * int(math.sqrt(n_bins * w_max / w_mean))
    return min(max(size, _MIN_CHUNK), _MAX_CHUNK)


def adaptive_weighted_thresholds(
    weights: np.ndarray, n_bins: int, w_max: float
) -> np.ndarray:
    """Per-ball thresholds ``W_i/n + w_max`` of the weighted ADAPTIVE rule.

    ``np.cumsum`` accumulates strictly left to right, so entry ``i`` is the
    bit-identical float a sequential ``placed += w`` loop would compute —
    the replay-equivalence contract between the chunked engine and the
    ball-by-ball reference depends on this.
    """
    weights = np.asarray(weights, dtype=np.float64)
    return np.cumsum(weights) / n_bins + w_max


def fixed_weighted_threshold(weights: np.ndarray, n_bins: int, w_max: float) -> float:
    """The constant threshold ``W/n + w_max`` of the weighted THRESHOLD rule.

    Shared by the engine and the reference so both compare against the exact
    same float.
    """
    weights = np.asarray(weights, dtype=np.float64)
    return float(weights.sum() / n_bins + w_max)


def sequential_weighted_place(
    loads: np.ndarray,
    threshold: float,
    stream: ProbeStream,
    max_probes: int,
) -> tuple[int, int]:
    """Place one ball with the literal scalar rule; return ``(bin, probes)``.

    This is the exact sequential primitive both the reference loop and the
    chunked engine's spill path execute: probe until a bin with load strictly
    below ``threshold`` turns up.  The caller adds the ball's weight (the
    rule itself does not need it).  Raises
    :class:`~repro.errors.SimulationError` once the ball has consumed
    ``max_probes`` probes without being accepted.
    """
    probes = 0
    while True:
        if probes >= max_probes:
            raise SimulationError(
                f"ball exceeded max_probes={max_probes} without finding a bin "
                f"below its threshold {threshold!r}; the probe source cannot "
                "satisfy the weighted acceptance rule"
            )
        j = stream.take_one()
        probes += 1
        if loads[j] < threshold:
            return j, probes


def _check_ball_budgets(
    accepted: np.ndarray, positions: np.ndarray, carry: int, max_probes: int
) -> int:
    """Enforce the per-ball probe cap over a determined block prefix.

    ``accepted`` is the boolean outcome of each determined probe,
    ``positions`` its acceptance indices, ``carry`` the number of probes the
    current front ball had already burned in earlier blocks.  Returns the
    trailing reject count (the new carry).  Raises
    :class:`~repro.errors.SimulationError` if any single ball consumed more
    than ``max_probes`` probes.

    The expensive per-ball gap scan only runs when the cap is reachable at
    all within this prefix — on healthy runs ``max_probes`` is orders of
    magnitude above any block size, so this is a single comparison.
    """
    if positions.size:
        trailing = int(accepted.size - positions[-1] - 1)
    else:
        trailing = carry + int(accepted.size)
    if carry + accepted.size > max_probes:
        if positions.size:
            # Probes consumed by the k-th placed ball: gap to the previous
            # acceptance (the first gap includes the carried-over rejects).
            first = int(positions[0]) + 1 + carry
            worst = max(first, int(np.diff(positions).max()) if positions.size > 1 else 0)
        else:
            worst = 0
        if worst > max_probes or trailing > max_probes:
            raise SimulationError(
                f"a ball exceeded max_probes={max_probes} without finding a "
                "bin below its threshold; the probe source cannot satisfy "
                "the weighted acceptance rule"
            )
    return trailing


def _commit_determined(
    loads: np.ndarray,
    bins: np.ndarray,
    positions: np.ndarray,
    weights: np.ndarray,
    ball_base: int,
    assignments: np.ndarray | None,
) -> None:
    """Fold the accepted probes of a determined prefix into ``loads``.

    The ``k``-th acceptance belongs to ball ``ball_base + k``.  ``np.add.at``
    applies the additions element by element in probe order, which is ball
    order — so each bin's float accumulation is bit-identical to the
    sequential loop's.
    """
    if not positions.size:
        return
    targets = bins[positions]
    batch = weights[ball_base : ball_base + positions.size]
    np.add.at(loads, targets, batch)
    if assignments is not None:
        assignments[ball_base : ball_base + positions.size] = targets


def chunked_weighted_assign(
    loads: np.ndarray,
    weights: np.ndarray,
    thresholds: np.ndarray,
    stream: ProbeStream,
    *,
    chunk_size: int | None = None,
    assignments: np.ndarray | None = None,
    max_probes: int | None = None,
) -> int:
    """Place all ``weights`` under per-ball ``thresholds``; return the probes.

    Parameters
    ----------
    loads:
        Current per-bin total weight (float64); **modified in place**.
    weights:
        Positive ball weights, in placement order.
    thresholds:
        Non-decreasing per-ball acceptance thresholds: ball ``i`` accepts a
        bin iff its current load is strictly below ``thresholds[i]`` (see
        :func:`adaptive_weighted_thresholds` / :func:`fixed_weighted_threshold`).
    stream:
        Probe stream to consume; its consumption is identical to the
        ball-by-ball process.
    chunk_size:
        Balls per chunk (default: :func:`default_weighted_chunk_size`, or a
        large constant when the threshold does not move).
    assignments:
        Optional int64 output vector; ball ``i`` writes its bin to
        ``assignments[i]``.
    max_probes:
        Per-ball probe cap (default via :func:`resolve_max_probes`).

    Returns
    -------
    int
        Number of probes consumed.
    """
    weights = np.asarray(weights, dtype=np.float64)
    thresholds = np.asarray(thresholds, dtype=np.float64)
    if weights.ndim != 1 or thresholds.shape != weights.shape:
        raise ConfigurationError(
            "weights and thresholds must be 1-D arrays of equal length"
        )
    if loads.ndim != 1 or loads.size != stream.n_bins:
        raise ConfigurationError(
            "loads must be a 1-D vector matching the probe stream's n_bins"
        )
    m = weights.size
    if m == 0:
        return 0
    if chunk_size is not None and chunk_size < 1:
        raise ConfigurationError(f"chunk_size must be positive, got {chunk_size}")
    cap = resolve_max_probes(max_probes, loads.size)
    if chunk_size is None:
        if thresholds[0] == thresholds[-1]:
            chunk = _CONSTANT_THRESHOLD_CHUNK
        else:
            chunk = default_weighted_chunk_size(loads.size, weights)
    else:
        chunk = int(chunk_size)

    probes = 0
    start = 0
    while start < m:
        end = min(start + chunk, m)
        probes += _place_chunk(
            loads, weights, thresholds, start, end, stream, assignments, cap
        )
        start = end
    return probes


#: Fixpoint iterations per block.  Each round re-verifies the provisional
#: execution after flipping the probes it proved rejected; blocks almost
#: always converge in two or three rounds, and non-convergence degrades
#: gracefully into a shorter verified prefix.
_MAX_SIMULATE_ROUNDS = 10


def _simulate_block(
    block: np.ndarray,
    bin_loads: np.ndarray,
    weights: np.ndarray,
    thresholds: np.ndarray,
    ball_base: int,
    last_ball: int,
) -> tuple[np.ndarray, int]:
    """Provisional exact simulation of one probe block.

    Starting from the optimistic assumption that every probe not *obviously*
    rejected (bin already at or above the chunk-end threshold ``T_hi``) is
    accepted, the block's sequential execution is replayed in vectorised
    form: provisional acceptances attribute probes to balls by cumulative
    count, a per-bin segmented prefix sum yields each probe's exact load at
    probe time, and comparing against the exact per-ball threshold verifies
    (or refutes) every assumption at once.  Refuted probes are flipped to
    rejected and the simulation re-verified — a fixpoint whose every status
    checks out *is* the sequential execution, by induction over probe order
    (a probe's outcome depends only on earlier probes).

    Returns ``(accepted, verified_until)``: outcomes are exact for all
    probes before ``verified_until``.  Probes whose load sits within a tiny
    float-rounding margin of their threshold are left unverified (the exact
    scalar rule resolves them), which keeps the vectorised prefix sums —
    whose per-bin accumulation order matches the sequential process but
    whose partial-sum rounding may differ in the last ulp — from ever
    deciding a comparison the reference would decide the other way.
    """
    size = block.size
    # Per-block sort structure (independent of the iteration state): probes
    # grouped by bin, original order preserved within a group.
    order = np.argsort(block, kind="stable")
    sorted_bins = block[order]
    new_group = np.empty(size, dtype=bool)
    new_group[0] = True
    new_group[1:] = sorted_bins[1:] != sorted_bins[:-1]
    group_ids = np.cumsum(new_group) - 1
    group_starts = np.flatnonzero(new_group)
    sorted_loads = bin_loads[order]

    obviously_rejected = bin_loads >= thresholds[last_ball]
    forced = obviously_rejected
    for _ in range(_MAX_SIMULATE_ROUNDS):
        alive = ~forced
        # Ball owning each probe under the provisional execution: rejected
        # probes belong to the ball still probing, accepted probes are that
        # ball's accepting probe — both are "ball_base + accepts before".
        alive_scan = np.cumsum(alive)
        balls = ball_base + alive_scan - alive
        beyond = balls > last_ball  # past the chunk: never committed
        np.clip(balls, ball_base, last_ball, out=balls)
        # Exact load at probe time under the provisional execution: start
        # load plus the weights of earlier provisionally accepted same-bin
        # probes (segmented exclusive prefix sum over the bin groups).
        contribution = np.where(alive, weights[balls], 0.0)
        sorted_contribution = contribution[order]
        exclusive = np.cumsum(sorted_contribution) - sorted_contribution
        group_base = exclusive[group_starts][group_ids]
        loads_at_probe = np.empty(size, dtype=np.float64)
        loads_at_probe[order] = sorted_loads + (exclusive - group_base)
        ball_thresholds = thresholds[balls]
        diff = ball_thresholds - loads_at_probe
        margin = _PESSIMISM_SLACK * (ball_thresholds + loads_at_probe)
        should_reject = (diff < -margin) & ~beyond
        uncertain = (np.abs(diff) <= margin) & ~beyond & ~obviously_rejected
        new_forced = obviously_rejected | should_reject
        if np.array_equal(new_forced, forced):
            accepted = alive & (diff > margin)
            verified_until = int(np.argmax(uncertain)) if uncertain.any() else size
            return accepted, verified_until
        changed = new_forced != forced
        forced = new_forced
    # Did not converge: the last round's statuses were verified under the
    # previous assumption, and a probe's outcome depends only on earlier
    # probes — so everything before the first probe that still flipped (or
    # is uncertain) is exact.
    accepted = alive & (diff > margin)
    first_unstable = int(np.argmax(changed)) if changed.any() else size
    first_uncertain = int(np.argmax(uncertain)) if uncertain.any() else size
    return accepted, min(first_unstable, first_uncertain)


def _place_chunk(
    loads: np.ndarray,
    weights: np.ndarray,
    thresholds: np.ndarray,
    start: int,
    end: int,
    stream: ProbeStream,
    assignments: np.ndarray | None,
    max_probes: int,
) -> int:
    """Place balls ``start … end-1`` of one chunk; return probes consumed."""
    backend = active_backend()
    probes = 0
    i = start  # next unplaced ball
    carry = 0  # probes the front ball already burned in earlier blocks
    while i < end:
        remaining = end - i
        size = remaining + remaining // 4 + 16
        if stream.available is not None:
            size = max(1, min(size, stream.available))
        block = stream.take(size)
        bin_loads = loads[block]
        accepted, first_amb = backend.simulate_weighted_block(
            block, bin_loads, weights, thresholds, i, end - 1
        )

        determined = accepted[:first_amb]
        cumulative = np.cumsum(determined)
        n_det = int(cumulative[-1]) if first_amb else 0

        if n_det >= remaining:
            # The chunk's last ball is placed inside the determined prefix;
            # probes after the closing acceptance belong to later chunks.
            cutoff = int(np.searchsorted(cumulative, remaining))
            if cutoff + 1 < block.size:
                stream.give_back(block[cutoff + 1 :])
            determined = determined[: cutoff + 1]
            positions = np.flatnonzero(determined)
            _check_ball_budgets(determined, positions, carry, max_probes)
            _commit_determined(
                loads, block[: cutoff + 1], positions, weights, i, assignments
            )
            probes += cutoff + 1
            i = end
            break

        if first_amb < block.size:
            # Ambiguous probe: hand the tail back so the scalar resolution
            # below re-reads it, keeping the probe sequence intact.
            stream.give_back(block[first_amb:])
        positions = np.flatnonzero(determined)
        carry = _check_ball_budgets(determined, positions, carry, max_probes)
        _commit_determined(loads, block[:first_amb], positions, weights, i, assignments)
        probes += first_amb
        i += n_det

        if first_amb < block.size and i < end:
            # The ball owning the ambiguous probe is exactly the next
            # unplaced one — resolve it with the literal sequential rule,
            # then re-vectorise.
            target, used = sequential_weighted_place(
                loads, float(thresholds[i]), stream, max_probes - carry
            )
            loads[target] += weights[i]
            if assignments is not None:
                assignments[i] = target
            probes += used
            i += 1
            carry = 0
    return probes
