"""Exact vectorised simulation of constant-threshold probe windows.

Both protocols reduce to the following primitive: place ``b`` balls by
repeatedly drawing uniform bin probes and accepting a probe into bin ``j``
iff the *current* load of ``j`` is at most a fixed acceptance limit ``T``
(the limit is constant for a whole THRESHOLD run and for each ADAPTIVE
stage, see :mod:`repro.core.thresholds`).

The sequential process can be vectorised exactly thanks to the following
observation.  Let ``c_j = max(T + 1 − load_j, 0)`` be bin ``j``'s remaining
capacity at the start of the window.  Every accepted probe into ``j``
increases its load by one, and probes are only rejected by full bins, so a
probe into ``j`` is accepted **iff the number of earlier probes into ``j``
within the window is smaller than ``c_j``** — acceptance depends only on the
probe's rank among same-bin probes, not on the interleaving with other bins.
We therefore draw probes in blocks, compute per-bin ranks with a stable sort,
mark acceptances, and stop at the ``b``-th acceptance.  The result (final
loads *and* number of probes consumed) is bit-for-bit identical to the
ball-by-ball reference implementation fed with the same probe sequence,
which the test-suite verifies.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.backend import active_backend
from repro.errors import ConfigurationError, ProtocolError
from repro.runtime.probes import BatchedProbeStream, ProbeStream

__all__ = [
    "WindowOutcome",
    "WindowAssignment",
    "occurrence_ranks",
    "conflict_free_rows",
    "fill_window",
    "fill_window_batch",
    "assign_window",
]


@dataclass(frozen=True)
class WindowOutcome:
    """Result of filling one constant-threshold window.

    Attributes
    ----------
    placed:
        Number of balls placed (always equals the requested count unless the
        window had insufficient total capacity, which is a caller bug).
    probes:
        Number of probes consumed, i.e. the allocation time of the window.
    """

    placed: int
    probes: int


@dataclass(frozen=True)
class WindowAssignment:
    """Result of :func:`assign_window`: who went where, in placement order.

    Attributes
    ----------
    assignments:
        Bin index of each placed ball, ordered by placement (equivalently, by
        the position of the accepting probe in the probe sequence).
    probes:
        Number of probes consumed.
    """

    assignments: np.ndarray
    probes: int


def occurrence_ranks(values: np.ndarray) -> np.ndarray:
    """Return, for each element, how many earlier elements are equal to it.

    ``occurrence_ranks([3, 5, 3, 3, 5]) == [0, 0, 1, 2, 1]``.

    This is the core of the window-filling trick; the computation runs on
    the active kernel backend (see :mod:`repro.core.backend`), with the
    default NumPy kernel in :func:`_occurrence_ranks_numpy`.
    """
    values = np.asarray(values)
    if values.ndim != 1:
        raise ConfigurationError("values must be a 1-D array")
    if values.size == 0:
        return np.empty(0, dtype=np.int64)
    return active_backend().occurrence_ranks(values)


def _occurrence_ranks_numpy(values: np.ndarray) -> np.ndarray:
    """Occurrence ranks with a stable argsort: O(k log k), fully vectorised."""
    k = values.size
    order = np.argsort(values, kind="stable")
    sorted_vals = values[order]
    new_group = np.empty(k, dtype=bool)
    new_group[0] = True
    new_group[1:] = sorted_vals[1:] != sorted_vals[:-1]
    group_start_positions = np.flatnonzero(new_group)
    group_ids = np.cumsum(new_group) - 1
    ranks_sorted = np.arange(k, dtype=np.int64) - group_start_positions[group_ids]
    ranks = np.empty(k, dtype=np.int64)
    ranks[order] = ranks_sorted
    return ranks


def conflict_free_rows(candidates: np.ndarray, n_bins: int | None = None) -> np.ndarray:
    """Mark the rows of a candidate matrix that no earlier row can disturb.

    ``candidates`` is a ``(k, d)`` matrix of bin indices: row ``i`` holds the
    candidate bins of the ``i``-th ball of a block, in sequential order.  A
    row is *conflict-free* when none of its values occurs in any **earlier**
    row; values repeated within a single row do not count as conflicts, and
    the first row is always conflict-free.

    This is the commit rule of the chunked baseline engine
    (:mod:`repro.baselines.engine`): a conflict-free ball sees exactly the
    bin loads the sequential process would show it, because every earlier
    ball of the block places into one of *its own* candidate bins — all
    disjoint from this row — and every later, already-committed ball was
    itself required to be disjoint from this row when it committed.

    The occurrence-rank idea of :func:`occurrence_ranks` specialises here to
    "does an element's value have an earlier holder?", which a single scatter
    answers in O(k·d + n) without a sort: assigning rows to a per-bin table
    in *reversed* element order leaves each bin holding its **first** row
    (later assignments overwrite, so reversing makes the earliest win), and
    an element conflicts iff its bin's first holder is a strictly earlier
    row.  ``n_bins`` sizes the scatter table; it defaults to
    ``candidates.max() + 1``.  The fold runs on the active kernel backend
    (:func:`_conflict_free_rows_numpy` is the default).
    """
    candidates = np.asarray(candidates)
    if candidates.ndim != 2:
        raise ConfigurationError("candidates must be a 2-D (balls x choices) array")
    k, d = candidates.shape
    if k == 0 or d == 0:
        return np.ones(k, dtype=bool)
    return active_backend().conflict_free_rows(candidates, n_bins)


def _conflict_free_rows_numpy(
    candidates: np.ndarray, n_bins: int | None = None
) -> np.ndarray:
    """Conflict-free rows via the reversed first-holder scatter (see above)."""
    k, d = candidates.shape
    flat = candidates.ravel()
    rows = np.repeat(np.arange(k, dtype=np.int64), d)
    size = int(flat.max()) + 1 if n_bins is None else int(n_bins)
    # No fill needed: only slots named by `flat` are read, all of them written.
    first_holder = np.empty(size, dtype=np.int64)
    first_holder[flat[::-1]] = rows[::-1]
    conflict = first_holder[flat] < rows
    return ~conflict.reshape(k, d).any(axis=1)


def _default_block_size(balls_remaining: int, n_bins: int) -> int:
    """Heuristic probe block size: slightly more than the balls still to place.

    Theorem 3.1 / Theorem 4.1 say the per-ball probe cost is constant (and
    close to one for THRESHOLD), so a block of ~1.3× the remaining balls
    usually finishes the window in one or two passes while wasting few draws.
    """
    base = max(64, balls_remaining + balls_remaining // 4 + 16)
    return min(base, max(4 * n_bins, 1 << 22))


def _run_window(
    loads: np.ndarray,
    acceptance_limit: int,
    n_balls: int,
    stream: ProbeStream,
    block_size: int | None,
    collect: bool,
) -> tuple[int, list[np.ndarray]]:
    """Shared engine behind :func:`fill_window` and :func:`assign_window`.

    Validates the window (the capacity check keeps every backend's loop
    terminating) and dispatches to the active kernel backend.  Returns
    ``(probes, accepted_chunks)`` where ``accepted_chunks`` holds the
    accepted bins of each pass in probe order (empty unless ``collect``).
    """
    if n_balls < 0:
        raise ConfigurationError(f"n_balls must be non-negative, got {n_balls}")
    loads = np.asarray(loads)
    if loads.ndim != 1 or loads.size == 0:
        raise ConfigurationError("loads must be a non-empty 1-D array")
    if loads.size != stream.n_bins:
        raise ConfigurationError(
            f"loads has {loads.size} bins but the probe stream samples from "
            f"{stream.n_bins}"
        )
    if n_balls == 0:
        return 0, []

    total_capacity = int(np.maximum(acceptance_limit + 1 - loads, 0).sum())
    if total_capacity < n_balls:
        raise ProtocolError(
            f"window capacity {total_capacity} is smaller than the {n_balls} "
            "balls to place; the protocol cannot terminate"
        )
    return active_backend().run_window(
        loads, acceptance_limit, n_balls, stream, block_size, collect
    )


def _run_window_numpy(
    loads: np.ndarray,
    acceptance_limit: int,
    n_balls: int,
    stream: ProbeStream,
    block_size: int | None,
    collect: bool,
) -> tuple[int, list[np.ndarray]]:
    """The vectorised rank-and-cutoff window engine (validated input)."""
    capacities = np.maximum(acceptance_limit + 1 - loads, 0).astype(np.int64)

    # Number of probes already seen per bin within this window.  A probe into
    # bin j is accepted iff seen[j] (at probe time) < capacities[j].
    seen = np.zeros(loads.size, dtype=np.int64)
    placed = 0
    probes = 0
    chunks: list[np.ndarray] = []

    while placed < n_balls:
        remaining = n_balls - placed
        size = block_size if block_size is not None else _default_block_size(
            remaining, loads.size
        )
        if stream.available is not None:
            # Finite replay streams: never request more than they can serve
            # (requesting at least one keeps the exhaustion error meaningful).
            size = max(1, min(size, stream.available))
        block = stream.take(size)
        ranks = _occurrence_ranks_numpy(block)
        accepted = seen[block] + ranks < capacities[block]
        cumulative = np.cumsum(accepted)
        if cumulative.size and cumulative[-1] >= remaining:
            # The `remaining`-th acceptance happens at this index; everything
            # after it is never examined by the sequential process.
            cutoff = int(np.searchsorted(cumulative, remaining))
            if cutoff + 1 < size:
                stream.give_back(block[cutoff + 1 :])
            block = block[: cutoff + 1]
            accepted = accepted[: cutoff + 1]
            probes += cutoff + 1
            newly_placed = remaining
        else:
            probes += size
            newly_placed = int(cumulative[-1]) if cumulative.size else 0

        accepted_bins = block[accepted]
        if accepted_bins.size:
            counts = np.bincount(accepted_bins, minlength=loads.size)
            loads += counts
            if collect:
                chunks.append(accepted_bins)
        # Every probe in the (possibly truncated) block was seen by its bin.
        seen += np.bincount(block, minlength=loads.size)
        placed += newly_placed

    return probes, chunks


def fill_window(
    loads: np.ndarray,
    acceptance_limit: int,
    n_balls: int,
    stream: ProbeStream,
    *,
    block_size: int | None = None,
) -> WindowOutcome:
    """Place ``n_balls`` balls under a constant acceptance limit.

    Parameters
    ----------
    loads:
        Current load vector; **modified in place**.
    acceptance_limit:
        A probe into bin ``j`` is accepted iff ``loads[j] <= acceptance_limit``
        at the moment of the probe.
    n_balls:
        Number of balls to place in this window.
    stream:
        Probe stream to consume; its ``consumed`` counter is left exactly at
        the number of probes the sequential process would have used.
    block_size:
        Number of probes drawn per vectorised pass (default: heuristic).

    Returns
    -------
    WindowOutcome

    Raises
    ------
    ProtocolError
        If the window's total remaining capacity is smaller than ``n_balls``
        (the protocol could never terminate) .
    """
    probes, _ = _run_window(
        loads, acceptance_limit, n_balls, stream, block_size, collect=False
    )
    return WindowOutcome(placed=n_balls, probes=probes)


#: Cap on the total elements of one batched pass (rows x block columns); keeps
#: the transient block memory of a many-trial window bounded (~32 MB of int64)
#: independently of the trial count.
_BATCH_ELEMENT_BUDGET = 1 << 22

#: When the best-placed trial's predicted probe need drops to this many
#: draws, batched passes switch from undershooting (whole blocks consumed,
#: pure counting) to overshooting (everyone finishes, exact per-row cutoffs).
#: Overshooting is cheap — unread tails are given back and were already in
#: the window matrix — while every undershot pass costs a full fold, so the
#: switch comes early.
_ENDGAME_DRAWS = 2048


def _exact_cutoff(
    vals: np.ndarray, free_row: np.ndarray, goal: int, size: int, hint: int = 0
) -> tuple[int, np.ndarray]:
    """Exact probe count of one trial's window-finishing block, sort-free.

    Finds the least prefix of ``vals`` holding exactly ``goal`` acceptances
    against per-bin ``free_row`` capacities via the prefix-counting fixpoint

        p  <-  goal + rejections(first p probes),

    where ``rejections(p) = sum_j max(count_j(p) - free_j, 0)`` needs only a
    prefix bincount.  Every step discovers all rejections inside the current
    prefix, so from below ``p`` grows monotonically to the least fixpoint —
    the probe count the sequential process consumes — and from above it
    contracts monotonically into the fixpoint interval (the least fixpoint
    plus the run of rejected probes trailing it, every point of which is
    also a fixpoint).  Any starting point is therefore exact; ``hint`` (an
    acceptance-rate prediction of the cutoff) starts the iteration near the
    answer.  Convergence is geometric with the local rejection density as
    ratio, so whenever two upward steps contract, the remaining series is
    added in one extrapolation jump; landing inside the trailing rejected
    run is corrected exactly by the final backward walk.

    Returns ``(taken, prefix_counts)``.  ``taken > size`` means the trial
    does not finish inside the block: it consumes the block whole, and
    ``prefix_counts`` are then the full-block counts (``size - (taken -
    goal)`` of which are accepted).
    """
    taken = max(goal, min(hint, size))
    prefix_counts = np.bincount(vals[:taken], minlength=free_row.size)
    prev_delta = 0
    while True:
        # rejections(taken) = sum(counts) - sum(min(counts, free)), and
        # sum(counts) is just the (clipped) prefix length — one elementwise
        # pass instead of two.
        acc = int(np.minimum(prefix_counts, free_row).sum())
        grown = goal + min(taken, size) - acc
        if grown == taken:
            break
        delta = grown - taken
        if prev_delta > delta > 0:
            # Geometric extrapolation: deltas contract by ~delta/prev_delta
            # per step; add the whole remaining series at once (capped at
            # the block — beyond it the counts saturate anyway).
            grown = min(grown + delta * delta // (prev_delta - delta) + 1, size)
        prev_delta = delta
        # Adjust the counts by the prefix delta only (slices clip at the
        # block end, which is exactly the saturation the non-finishing
        # detection below relies on).  A downward step only happens after
        # an extrapolation overshoot past the fixpoint interval.
        if grown > taken:
            prefix_counts += np.bincount(vals[taken:grown], minlength=free_row.size)
        else:
            prefix_counts -= np.bincount(vals[grown:taken], minlength=free_row.size)
        taken = grown
    if taken <= size:
        # Walk back over the trailing run of rejected probes (if any): the
        # sequential process stops at its goal-th acceptance, so the exact
        # cutoff position must itself be an acceptance.
        while taken > 0:
            v = vals[taken - 1]
            if prefix_counts[v] <= free_row[v]:
                break
            prefix_counts[v] -= 1
            taken -= 1
    return taken, prefix_counts


def fill_window_batch(
    loads: np.ndarray,
    acceptance_limit: int,
    n_balls: int,
    batch: BatchedProbeStream,
    *,
    block_size: int | None = None,
) -> np.ndarray:
    """Fill the same constant-limit window for every trial of a batch at once.

    The trial-axis counterpart of :func:`fill_window`: ``loads`` is a
    ``(trials, n_bins)`` matrix (modified in place), ``batch`` bundles one
    probe stream per trial, and each trial places ``n_balls`` balls under
    ``acceptance_limit`` exactly as its own single-trial window would.

    The key fold is *counting*, not ranking: when a trial consumes a whole
    pass block (it does not reach its ``n_balls``-th acceptance inside it),
    the number of probes it accepts into bin ``j`` is exactly
    ``min(count_j, free_j)`` where ``free_j = max(cap_j - seen_j, 0)`` — the
    first ``free_j`` same-bin probes are accepted and the rest rejected,
    regardless of their interleaving.  Each trial's upcoming probes live in
    its child stream's own draw block (taken once per window, never
    copied); active rows consume those blocks in lockstep, so a bulk pass
    is one per-row :func:`numpy.bincount` over a contiguous slice view into
    a maintained ``(trials, n_bins)`` counts matrix plus one flat
    elementwise minimum against the maintained free capacities — no stable
    sort, no per-probe rank, no index offsetting.  Only a trial whose pass
    block contains its final acceptance needs the exact probe-order
    resolution; those (few) rows resolve their cutoff with the sort-free
    prefix-counting fixpoint (:func:`_exact_cutoff`), give their unread
    tail back to their child stream, and drop out of subsequent passes.
    Per-trial loads *and* probe counts are therefore bit-identical to the
    single-trial engine (the block-partitioning invariance the test-suite
    certifies).

    Pass sizes adapt to each window's observed acceptance rate (aiming to
    finish most trials in a small constant number of passes) unless
    ``block_size`` pins them; sizing only moves work between passes and
    never changes results.

    Returns the per-trial probe counts as an int64 array of length ``trials``.
    """
    if n_balls < 0:
        raise ConfigurationError(f"n_balls must be non-negative, got {n_balls}")
    loads = np.asarray(loads)
    if loads.ndim != 2 or loads.size == 0:
        raise ConfigurationError("loads must be a non-empty 2-D (trials x bins) array")
    if not loads.flags.c_contiguous:
        # The flat fold below must alias the caller's matrix, not a copy.
        raise ConfigurationError("loads must be C-contiguous")
    n_trials, n_bins = loads.shape
    if n_trials != batch.trials:
        raise ConfigurationError(
            f"loads has {n_trials} trial rows but the batch holds {batch.trials} streams"
        )
    if n_bins != batch.n_bins:
        raise ConfigurationError(
            f"loads has {n_bins} bins but the probe streams sample from {batch.n_bins}"
        )
    probes = np.zeros(n_trials, dtype=np.int64)
    if n_balls == 0:
        return probes

    capacities = np.maximum(acceptance_limit + 1 - loads, 0).astype(np.int64)
    short = np.flatnonzero(capacities.sum(axis=1) < n_balls)
    if short.size:
        raise ProtocolError(
            f"window capacity of trial {int(short[0])} is smaller than the "
            f"{n_balls} balls to place; the protocol cannot terminate"
        )

    flat_loads = loads.reshape(-1)
    # Maintained free capacities: free[t*n + j] = max(cap_j - seen_j, 0) for
    # trial t, updated in place as probes land (free -= accepted is exact:
    # accepted = min(counts, free) can never push free below zero).
    free = capacities.reshape(-1)
    free_rows = free.reshape(n_trials, n_bins)
    remaining = np.full(n_trials, n_balls, dtype=np.int64)
    active = np.arange(n_trials, dtype=np.int64)

    # Per-trial probe rows: ``rows[r]`` holds the upcoming probes of the
    # ``r``-th active trial — usually the child's own draw block, taken once
    # per window, never copied.  Active rows consume in lockstep (every pass
    # takes ``size`` probes from each), so one shared cursor suffices; a
    # finishing row hands its unread tail back to its child stream and drops
    # out.  Bulk passes bincount each row's contiguous slice view directly
    # into a maintained per-trial counts matrix — no 2-D materialisation,
    # no index offsetting, no per-pass copies at all.
    rows: list[np.ndarray] = []
    width = 0
    cur = 0
    counts_rows = np.zeros((n_trials, n_bins), dtype=np.int64)
    counts = counts_rows.reshape(-1)

    while active.size:
        rem = remaining[active]
        endgame = False
        if block_size is not None:
            size = block_size
            want = size
        else:
            # Each row's instantaneous acceptance probability is exactly its
            # fraction of unsaturated bins (a probe lands uniformly and is
            # accepted iff its bin still has free capacity).  It only
            # declines as slots fill, so ``need = rem / p_now`` is a slight
            # underestimate of the probes still required — which keeps the
            # bulk undershoot safe and tells the endgame how much margin to
            # add.
            unsat = (
                np.count_nonzero(free_rows, axis=1)[active]
                if active.size == n_trials
                else np.count_nonzero(free_rows[active], axis=1)
            )
            need = rem * (float(n_bins) / np.maximum(unsat, 1))
            min_need = float(need.min())
            endgame = min_need <= _ENDGAME_DRAWS
            if endgame:
                # Close to done: overshoot so (almost) every trial finishes
                # this pass; the exact per-row cutoff handles the overshoot.
                # The margin covers the within-pass decline of p_now.
                size = int(float(need.max()) * 1.35) + 64
            else:
                # Bulk regime: undershoot so whole blocks are consumed and
                # the cheap counting fold applies to every row.
                size = int(min_need * 0.85)
            # Refills aim past the worst row's predicted remaining need so
            # the whole window is usually one generator call per child.
            want = int(float(need.max()) * 1.125) + 64
        size = max(1, min(size, _BATCH_ELEMENT_BUDGET // active.size))
        avail = width - cur
        if endgame and size > avail >= min(size, int(min_need * 1.2) + 32):
            # The matrix leftover is a little short of the desired overshoot
            # but still comfortably covers the best-placed rows: consume it
            # to the end rather than refilling (stragglers — if any — get a
            # cheap small pass of their own).
            size = avail
        if avail < size:
            fresh = max(size, want) - avail
            bound = batch.min_available(active)
            if bound is not None:
                # Finite replay streams: never request more than they can
                # serve; when nothing is left, request one probe so the
                # child raises its exhaustion error exactly as a direct
                # take would.
                fresh = min(fresh, bound)
                if fresh <= 0:
                    fresh = 0 if avail else 1
                size = min(size, avail + fresh)
            if fresh > 0:
                children = batch.children
                if avail:
                    rows = [
                        np.concatenate([rows[r][cur:width], children[trial].take(fresh)])
                        for r, trial in enumerate(active)
                    ]
                else:
                    rows = [children[trial].take(fresh) for trial in active]
                width = avail + fresh
                cur = 0

        if endgame:
            # Every row is expected to finish, so skip the global fold and
            # resolve each row with the prefix-counting fixpoint directly;
            # a row whose fixpoint exceeds the block size did not finish
            # (its full-block counts fall out of the same computation).
            end = cur + size
            for r in range(active.size):
                trial = int(active[r])
                base = trial * n_bins
                vals = rows[r][cur:end]
                free_row = free[base : base + n_bins]
                goal = int(rem[r])
                taken, prefix_counts = _exact_cutoff(
                    vals, free_row, goal, size, hint=int(need[r] * 1.2) + 8
                )
                accepted_row = np.minimum(prefix_counts, free_row)
                flat_loads[base : base + n_bins] += accepted_row
                free_row -= accepted_row
                if taken <= size:
                    tail = rows[r][cur + taken : width]
                    if tail.size:
                        batch.give_back(trial, tail)
                    probes[trial] += taken
                    remaining[trial] = 0
                    counts_rows[trial].fill(0)
                else:
                    # Fixpoint ran past the block: the row consumed it whole
                    # and places only its accepted count this pass.
                    newly = size - (taken - goal)
                    probes[trial] += size
                    remaining[trial] -= newly
            cur = end
            keep = remaining[active] > 0
            if not keep.all():
                rows = [rows[r] for r in np.flatnonzero(keep)]
                active = active[keep]
            continue

        end = cur + size
        for r in range(active.size):
            counts_rows[active[r]] = np.bincount(rows[r][cur:end], minlength=n_bins)
        accepted = np.minimum(counts, free)
        accepted_view = accepted.reshape(n_trials, n_bins)
        totals = (
            accepted_view.sum(axis=1)
            if active.size == n_trials
            else accepted_view[active].sum(axis=1)
        )
        finishing = totals >= rem
        fin_rows = np.flatnonzero(finishing)
        for r in fin_rows:
            # This row's n_balls-th acceptance lies inside the block; find
            # its exact position with the sort-free prefix-counting
            # fixpoint (see :func:`_exact_cutoff`).
            trial = int(active[r])
            base = trial * n_bins
            vals = rows[r][cur:end]
            free_row = free[base : base + n_bins]
            goal = int(rem[r])
            taken, prefix_counts = _exact_cutoff(
                vals,
                free_row,
                goal,
                size,
                hint=0 if block_size is not None else int(need[r] * 1.1) + 8,
            )
            tail = rows[r][cur + taken : width]
            if tail.size:
                batch.give_back(trial, tail)
            accepted_row = np.minimum(prefix_counts, free_row)
            flat_loads[base : base + n_bins] += accepted_row
            free_row -= accepted_row
            probes[trial] += taken
            remaining[trial] = 0
            # The exact prefix above replaces this row's share of the bulk
            # fold; zero its regions so the bulk update skips it (and later
            # passes never see stale counts).
            counts_rows[trial].fill(0)
            accepted[base : base + n_bins] = 0
        if fin_rows.size < active.size:
            # Non-finishing rows consume their whole block: the counting
            # fold is exact, no ranks needed.
            flat_loads += accepted
            free -= accepted
            nonfin = active[~finishing]
            probes[nonfin] += size
            remaining[nonfin] -= totals[~finishing]
        cur = end
        keep = remaining[active] > 0
        if not keep.all():
            rows = [rows[r] for r in np.flatnonzero(keep)]
            active = active[keep]

    return probes


def assign_window(
    loads: np.ndarray,
    acceptance_limit: int,
    n_balls: int,
    stream: ProbeStream,
    *,
    block_size: int | None = None,
) -> WindowAssignment:
    """Like :func:`fill_window`, but also report which bin took each ball.

    This is the "probe until accepted" primitive the batched dispatcher is
    built on: the ``k``-th entry of the returned ``assignments`` is the bin
    that accepted ball ``k`` of the window, exactly as in the sequential
    process (same probes consumed, same loads, same acceptance order).
    ``loads`` is modified in place, as in :func:`fill_window`.
    """
    probes, chunks = _run_window(
        loads, acceptance_limit, n_balls, stream, block_size, collect=True
    )
    if chunks:
        assignments = np.concatenate(chunks)
    else:
        assignments = np.empty(0, dtype=np.int64)
    return WindowAssignment(assignments=assignments, probes=probes)
