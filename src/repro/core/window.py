"""Exact vectorised simulation of constant-threshold probe windows.

Both protocols reduce to the following primitive: place ``b`` balls by
repeatedly drawing uniform bin probes and accepting a probe into bin ``j``
iff the *current* load of ``j`` is at most a fixed acceptance limit ``T``
(the limit is constant for a whole THRESHOLD run and for each ADAPTIVE
stage, see :mod:`repro.core.thresholds`).

The sequential process can be vectorised exactly thanks to the following
observation.  Let ``c_j = max(T + 1 − load_j, 0)`` be bin ``j``'s remaining
capacity at the start of the window.  Every accepted probe into ``j``
increases its load by one, and probes are only rejected by full bins, so a
probe into ``j`` is accepted **iff the number of earlier probes into ``j``
within the window is smaller than ``c_j``** — acceptance depends only on the
probe's rank among same-bin probes, not on the interleaving with other bins.
We therefore draw probes in blocks, compute per-bin ranks with a stable sort,
mark acceptances, and stop at the ``b``-th acceptance.  The result (final
loads *and* number of probes consumed) is bit-for-bit identical to the
ball-by-ball reference implementation fed with the same probe sequence,
which the test-suite verifies.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError, ProtocolError
from repro.runtime.probes import ProbeStream

__all__ = [
    "WindowOutcome",
    "WindowAssignment",
    "occurrence_ranks",
    "conflict_free_rows",
    "fill_window",
    "assign_window",
]


@dataclass(frozen=True)
class WindowOutcome:
    """Result of filling one constant-threshold window.

    Attributes
    ----------
    placed:
        Number of balls placed (always equals the requested count unless the
        window had insufficient total capacity, which is a caller bug).
    probes:
        Number of probes consumed, i.e. the allocation time of the window.
    """

    placed: int
    probes: int


@dataclass(frozen=True)
class WindowAssignment:
    """Result of :func:`assign_window`: who went where, in placement order.

    Attributes
    ----------
    assignments:
        Bin index of each placed ball, ordered by placement (equivalently, by
        the position of the accepting probe in the probe sequence).
    probes:
        Number of probes consumed.
    """

    assignments: np.ndarray
    probes: int


def occurrence_ranks(values: np.ndarray) -> np.ndarray:
    """Return, for each element, how many earlier elements are equal to it.

    ``occurrence_ranks([3, 5, 3, 3, 5]) == [0, 0, 1, 2, 1]``.

    Implemented with a stable argsort so it is O(k log k) and fully
    vectorised; this is the core of the window-filling trick.
    """
    values = np.asarray(values)
    if values.ndim != 1:
        raise ConfigurationError("values must be a 1-D array")
    k = values.size
    if k == 0:
        return np.empty(0, dtype=np.int64)
    order = np.argsort(values, kind="stable")
    sorted_vals = values[order]
    new_group = np.empty(k, dtype=bool)
    new_group[0] = True
    new_group[1:] = sorted_vals[1:] != sorted_vals[:-1]
    group_start_positions = np.flatnonzero(new_group)
    group_ids = np.cumsum(new_group) - 1
    ranks_sorted = np.arange(k, dtype=np.int64) - group_start_positions[group_ids]
    ranks = np.empty(k, dtype=np.int64)
    ranks[order] = ranks_sorted
    return ranks


def conflict_free_rows(candidates: np.ndarray, n_bins: int | None = None) -> np.ndarray:
    """Mark the rows of a candidate matrix that no earlier row can disturb.

    ``candidates`` is a ``(k, d)`` matrix of bin indices: row ``i`` holds the
    candidate bins of the ``i``-th ball of a block, in sequential order.  A
    row is *conflict-free* when none of its values occurs in any **earlier**
    row; values repeated within a single row do not count as conflicts, and
    the first row is always conflict-free.

    This is the commit rule of the chunked baseline engine
    (:mod:`repro.baselines.engine`): a conflict-free ball sees exactly the
    bin loads the sequential process would show it, because every earlier
    ball of the block places into one of *its own* candidate bins — all
    disjoint from this row — and every later, already-committed ball was
    itself required to be disjoint from this row when it committed.

    The occurrence-rank idea of :func:`occurrence_ranks` specialises here to
    "does an element's value have an earlier holder?", which a single scatter
    answers in O(k·d + n) without a sort: assigning rows to a per-bin table
    in *reversed* element order leaves each bin holding its **first** row
    (later assignments overwrite, so reversing makes the earliest win), and
    an element conflicts iff its bin's first holder is a strictly earlier
    row.  ``n_bins`` sizes the scatter table; it defaults to
    ``candidates.max() + 1``.
    """
    candidates = np.asarray(candidates)
    if candidates.ndim != 2:
        raise ConfigurationError("candidates must be a 2-D (balls x choices) array")
    k, d = candidates.shape
    if k == 0 or d == 0:
        return np.ones(k, dtype=bool)
    flat = candidates.ravel()
    rows = np.repeat(np.arange(k, dtype=np.int64), d)
    size = int(flat.max()) + 1 if n_bins is None else int(n_bins)
    # No fill needed: only slots named by `flat` are read, all of them written.
    first_holder = np.empty(size, dtype=np.int64)
    first_holder[flat[::-1]] = rows[::-1]
    conflict = first_holder[flat] < rows
    return ~conflict.reshape(k, d).any(axis=1)


def _default_block_size(balls_remaining: int, n_bins: int) -> int:
    """Heuristic probe block size: slightly more than the balls still to place.

    Theorem 3.1 / Theorem 4.1 say the per-ball probe cost is constant (and
    close to one for THRESHOLD), so a block of ~1.3× the remaining balls
    usually finishes the window in one or two passes while wasting few draws.
    """
    base = max(64, balls_remaining + balls_remaining // 4 + 16)
    return min(base, max(4 * n_bins, 1 << 22))


def _run_window(
    loads: np.ndarray,
    acceptance_limit: int,
    n_balls: int,
    stream: ProbeStream,
    block_size: int | None,
    collect: bool,
) -> tuple[int, list[np.ndarray]]:
    """Shared engine behind :func:`fill_window` and :func:`assign_window`.

    Returns ``(probes, accepted_chunks)`` where ``accepted_chunks`` holds the
    accepted bins of each pass in probe order (empty unless ``collect``).
    """
    if n_balls < 0:
        raise ConfigurationError(f"n_balls must be non-negative, got {n_balls}")
    loads = np.asarray(loads)
    if loads.ndim != 1 or loads.size == 0:
        raise ConfigurationError("loads must be a non-empty 1-D array")
    if loads.size != stream.n_bins:
        raise ConfigurationError(
            f"loads has {loads.size} bins but the probe stream samples from "
            f"{stream.n_bins}"
        )
    if n_balls == 0:
        return 0, []

    capacities = np.maximum(acceptance_limit + 1 - loads, 0).astype(np.int64)
    total_capacity = int(capacities.sum())
    if total_capacity < n_balls:
        raise ProtocolError(
            f"window capacity {total_capacity} is smaller than the {n_balls} "
            "balls to place; the protocol cannot terminate"
        )

    # Number of probes already seen per bin within this window.  A probe into
    # bin j is accepted iff seen[j] (at probe time) < capacities[j].
    seen = np.zeros(loads.size, dtype=np.int64)
    placed = 0
    probes = 0
    chunks: list[np.ndarray] = []

    while placed < n_balls:
        remaining = n_balls - placed
        size = block_size if block_size is not None else _default_block_size(
            remaining, loads.size
        )
        if stream.available is not None:
            # Finite replay streams: never request more than they can serve
            # (requesting at least one keeps the exhaustion error meaningful).
            size = max(1, min(size, stream.available))
        block = stream.take(size)
        ranks = occurrence_ranks(block)
        accepted = seen[block] + ranks < capacities[block]
        cumulative = np.cumsum(accepted)
        if cumulative.size and cumulative[-1] >= remaining:
            # The `remaining`-th acceptance happens at this index; everything
            # after it is never examined by the sequential process.
            cutoff = int(np.searchsorted(cumulative, remaining))
            if cutoff + 1 < size:
                stream.give_back(block[cutoff + 1 :])
            block = block[: cutoff + 1]
            accepted = accepted[: cutoff + 1]
            probes += cutoff + 1
            newly_placed = remaining
        else:
            probes += size
            newly_placed = int(cumulative[-1]) if cumulative.size else 0

        accepted_bins = block[accepted]
        if accepted_bins.size:
            counts = np.bincount(accepted_bins, minlength=loads.size)
            loads += counts
            if collect:
                chunks.append(accepted_bins)
        # Every probe in the (possibly truncated) block was seen by its bin.
        seen += np.bincount(block, minlength=loads.size)
        placed += newly_placed

    return probes, chunks


def fill_window(
    loads: np.ndarray,
    acceptance_limit: int,
    n_balls: int,
    stream: ProbeStream,
    *,
    block_size: int | None = None,
) -> WindowOutcome:
    """Place ``n_balls`` balls under a constant acceptance limit.

    Parameters
    ----------
    loads:
        Current load vector; **modified in place**.
    acceptance_limit:
        A probe into bin ``j`` is accepted iff ``loads[j] <= acceptance_limit``
        at the moment of the probe.
    n_balls:
        Number of balls to place in this window.
    stream:
        Probe stream to consume; its ``consumed`` counter is left exactly at
        the number of probes the sequential process would have used.
    block_size:
        Number of probes drawn per vectorised pass (default: heuristic).

    Returns
    -------
    WindowOutcome

    Raises
    ------
    ProtocolError
        If the window's total remaining capacity is smaller than ``n_balls``
        (the protocol could never terminate) .
    """
    probes, _ = _run_window(
        loads, acceptance_limit, n_balls, stream, block_size, collect=False
    )
    return WindowOutcome(placed=n_balls, probes=probes)


def assign_window(
    loads: np.ndarray,
    acceptance_limit: int,
    n_balls: int,
    stream: ProbeStream,
    *,
    block_size: int | None = None,
) -> WindowAssignment:
    """Like :func:`fill_window`, but also report which bin took each ball.

    This is the "probe until accepted" primitive the batched dispatcher is
    built on: the ``k``-th entry of the returned ``assignments`` is the bin
    that accepted ball ``k`` of the window, exactly as in the sequential
    process (same probes consumed, same loads, same acceptance order).
    ``loads`` is modified in place, as in :func:`fill_window`.
    """
    probes, chunks = _run_window(
        loads, acceptance_limit, n_balls, stream, block_size, collect=True
    )
    if chunks:
        assignments = np.concatenate(chunks)
    else:
        assignments = np.empty(0, dtype=np.int64)
    return WindowAssignment(assignments=assignments, probes=probes)
