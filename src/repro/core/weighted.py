"""Weighted-balls extension of the ADAPTIVE protocol.

The paper analyses unit-weight balls.  A natural extension (and the setting
of most follow-up work on the heavily loaded case) gives every ball ``i`` a
weight ``w_i`` and measures bin load as the *sum of weights*.  The ADAPTIVE
rule generalises directly: ball ``i`` is accepted into a bin whose current
weight is strictly below ``W_i/n + w_max``, where ``W_i`` is the total weight
of the balls placed so far (including ball ``i``) and ``w_max`` an upper bound
on the individual weights.  With unit weights this is exactly the paper's
threshold ``i/n + 1``, and the same argument gives the deterministic
guarantee ``max load ≤ W/n + 2·w_max`` (the accepted bin was below the
threshold, and the ball adds at most ``w_max``).

This module is an *extension*, not a reproduction artefact: it exists to show
that the library's architecture supports the natural follow-up experiments
(DESIGN.md lists it as optional scope).  The implementation is a clean
ball-by-ball loop — the exact vectorised window trick does not apply because
the threshold moves with every ball.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError
from repro.runtime.probes import ProbeStream, RandomProbeStream
from repro.runtime.rng import SeedLike

__all__ = ["WeightedAllocationResult", "run_weighted_adaptive", "weighted_gap_bound"]


@dataclass
class WeightedAllocationResult:
    """Outcome of a weighted ADAPTIVE run.

    Attributes
    ----------
    weights:
        The ball weights, in placement order.
    loads:
        Final per-bin total weight.
    counts:
        Final per-bin number of balls.
    allocation_time:
        Number of bin probes consumed.
    """

    weights: np.ndarray
    loads: np.ndarray
    counts: np.ndarray
    allocation_time: int

    @property
    def n_bins(self) -> int:
        return int(self.loads.size)

    @property
    def total_weight(self) -> float:
        return float(self.weights.sum())

    @property
    def max_load(self) -> float:
        return float(self.loads.max()) if self.loads.size else 0.0

    @property
    def average_load(self) -> float:
        return self.total_weight / self.n_bins if self.n_bins else 0.0

    @property
    def gap(self) -> float:
        return float(self.loads.max() - self.loads.min()) if self.loads.size else 0.0

    @property
    def probes_per_ball(self) -> float:
        return self.allocation_time / self.weights.size if self.weights.size else 0.0


def weighted_gap_bound(weights: np.ndarray, n_bins: int) -> float:
    """Deterministic max-load bound of the weighted ADAPTIVE rule.

    ``max load ≤ W/n + 2·w_max``: the bin accepted the last ball while below
    ``W/n + w_max`` and the ball itself weighs at most ``w_max``.
    """
    weights = np.asarray(weights, dtype=np.float64)
    if weights.ndim != 1 or weights.size == 0:
        raise ConfigurationError("weights must be a non-empty 1-D array")
    if np.any(weights <= 0):
        raise ConfigurationError("weights must be positive")
    if n_bins <= 0:
        raise ConfigurationError(f"n_bins must be positive, got {n_bins}")
    return float(weights.sum() / n_bins + 2.0 * weights.max())


def run_weighted_adaptive(
    weights: np.ndarray,
    n_bins: int,
    seed: SeedLike = None,
    *,
    probe_stream: ProbeStream | None = None,
    w_max: float | None = None,
) -> WeightedAllocationResult:
    """Allocate weighted balls with the generalised ADAPTIVE rule.

    Parameters
    ----------
    weights:
        Positive ball weights, processed in order.
    n_bins:
        Number of bins.
    seed / probe_stream:
        Randomness source (same conventions as the unit-weight protocols).
    w_max:
        Upper bound on the weights used in the acceptance threshold; defaults
        to ``weights.max()``.  Must dominate every weight.

    Returns
    -------
    WeightedAllocationResult
    """
    weights = np.asarray(weights, dtype=np.float64)
    if weights.ndim != 1:
        raise ConfigurationError("weights must be a 1-D array")
    if weights.size and np.any(weights <= 0):
        raise ConfigurationError("weights must be positive")
    if n_bins <= 0:
        raise ConfigurationError(f"n_bins must be positive, got {n_bins}")
    if w_max is None:
        w_max = float(weights.max()) if weights.size else 1.0
    elif weights.size and w_max < weights.max():
        raise ConfigurationError("w_max must dominate every ball weight")

    stream = probe_stream or RandomProbeStream(n_bins, seed)
    if stream.n_bins != n_bins:
        raise ConfigurationError(
            "probe_stream.n_bins does not match the requested n_bins"
        )

    loads = np.zeros(n_bins, dtype=np.float64)
    counts = np.zeros(n_bins, dtype=np.int64)
    probes = 0
    placed_weight = 0.0

    for weight in weights:
        placed_weight += float(weight)
        threshold = placed_weight / n_bins + w_max
        while True:
            j = stream.take_one()
            probes += 1
            if loads[j] < threshold:
                loads[j] += float(weight)
                counts[j] += 1
                break

    return WeightedAllocationResult(
        weights=weights.copy(),
        loads=loads,
        counts=counts,
        allocation_time=probes,
    )
