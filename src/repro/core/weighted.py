"""Weighted-balls extension of the paper's protocols.

The paper analyses unit-weight balls.  A natural extension (and the setting
of most follow-up work on the heavily loaded case) gives every ball ``i`` a
weight ``w_i`` and measures bin load as the *sum of weights*.  The ADAPTIVE
rule generalises directly: ball ``i`` is accepted into a bin whose current
weight is strictly below ``W_i/n + w_max``, where ``W_i`` is the total weight
of the balls placed so far (including ball ``i``) and ``w_max`` an upper bound
on the individual weights.  With unit weights this is exactly the paper's
threshold ``i/n + 1`` — probe for probe, since integer loads satisfy
``load < i/n + 1`` iff ``load <= ceil(i/n)`` — and the same argument gives
the deterministic guarantee ``max load ≤ W/n + 2·w_max``.

Five weighted protocols are provided, mirroring the unit-weight family:

* :func:`run_weighted_adaptive` — the moving-threshold rule above;
* :func:`run_weighted_threshold` — the THRESHOLD analogue with the fixed
  bound ``W/n + w_max`` (needs the total weight up front);
* :func:`run_weighted_greedy` — greedy[d] on weighted loads (place into the
  least-weighted of ``d`` uniform draws);
* :func:`run_weighted_left` — Vöcking's left[d] on weighted loads (one bin
  per group, leftmost least-weighted wins);
* :func:`run_weighted_memory` — the (d,k)-memory rule on weighted loads
  (``d`` fresh draws plus the ``k`` least weighted-loaded remembered bins).

All three run through chunked exact vectorised engines — the moving
threshold is bracketed per chunk by the engine of
:mod:`repro.core.weighted_engine`, and the d-choice rule reuses the
conflict-free commit engine of :mod:`repro.baselines.engine` with weighted
increments.  The original ball-by-ball loops are kept as
``reference_weighted_*`` (mirroring :mod:`repro.baselines.reference`) so the
test-suite can certify bit-identical replay equivalence, and every probe
loop is capped by ``max_probes`` (raising
:class:`~repro.errors.SimulationError` instead of spinning forever on a
probe source that never offers an acceptable bin).

The registry names ``"weighted-adaptive"``, ``"weighted-threshold"``,
``"weighted-greedy"``, ``"weighted-left"`` and ``"weighted-memory"`` wrap
these runners as
:class:`~repro.core.protocol.AllocationProtocol` instances that draw their
weights from a named family of :data:`repro.stats.distributions.WEIGHT_DISTRIBUTIONS`
(Pareto, exponential, bimodal, …) via the stream's auxiliary generator, so
experiment configurations stay serialisable and replay-deterministic.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Mapping

import numpy as np

from repro.baselines.engine import chunked_argmin_commit, matrix_source
from repro.baselines.greedy import DChoiceSession
from repro.baselines.left import replay_group_map, seeded_group_choices
from repro.baselines.memory_engine import chunked_weighted_memory_commit
from repro.core.protocol import AllocationProtocol, register_protocol
from repro.core.result import RunResult, register_record_kind
from repro.core.session import ProtocolSession
from repro.core.weighted_engine import (
    adaptive_weighted_thresholds,
    chunked_weighted_assign,
    fixed_weighted_threshold,
    resolve_max_probes,
    sequential_weighted_place,
)
from repro.errors import ConfigurationError
from repro.runtime.costs import CostModel
from repro.runtime.probes import ProbeStream, RandomProbeStream
from repro.runtime.rng import SeedLike
from repro.stats.distributions import WEIGHT_DISTRIBUTIONS, make_weights

__all__ = [
    "WeightedAllocationResult",
    "WeightedRunResult",
    "run_weighted_adaptive",
    "reference_weighted_adaptive",
    "run_weighted_threshold",
    "reference_weighted_threshold",
    "run_weighted_greedy",
    "reference_weighted_greedy",
    "run_weighted_left",
    "reference_weighted_left",
    "run_weighted_memory",
    "reference_weighted_memory",
    "weighted_gap_bound",
    "WeightedAdaptiveProtocol",
    "WeightedThresholdProtocol",
    "WeightedGreedyProtocol",
    "WeightedLeftProtocol",
    "WeightedMemoryProtocol",
]


@dataclass
class WeightedRunResult(RunResult):
    """Unified record of a weighted protocol run.

    Part of the :class:`~repro.core.result.RunResult` hierarchy: ``loads``
    holds the per-bin *ball counts* (so every base-class invariant and
    downstream consumer keeps working) and the weighted view lives in the
    extra fields.  ``WeightedAllocationResult`` is a thin alias of this class
    kept for backwards compatibility.

    Attributes
    ----------
    weights:
        The ball weights, in placement order.
    weighted_loads:
        Final per-bin total weight (the weighted load vector).
    w_max_used:
        The weight bound the acceptance thresholds were computed with
        (``None`` for rules that use no bound, e.g. weighted greedy).
    """

    weights: np.ndarray | None = None
    weighted_loads: np.ndarray | None = None
    w_max_used: float | None = None

    @property
    def counts(self) -> np.ndarray:
        """Per-bin ball counts (alias of ``loads`` under its weighted name)."""
        return self.loads

    @property
    def total_weight(self) -> float:
        return float(self.weights.sum()) if self.weights is not None else 0.0

    @property
    def weighted_max_load(self) -> float:
        if self.weighted_loads is None or not self.weighted_loads.size:
            return 0.0
        return float(self.weighted_loads.max())

    @property
    def weighted_average_load(self) -> float:
        return self.total_weight / self.n_bins if self.n_bins else 0.0

    @property
    def weighted_gap(self) -> float:
        if self.weighted_loads is None or not self.weighted_loads.size:
            return 0.0
        return float(self.weighted_loads.max() - self.weighted_loads.min())

    record_kind = "weighted"

    def as_record(self, arrays: bool = True) -> dict[str, Any]:
        record = super().as_record(arrays=arrays)
        record["total_weight"] = float(self.total_weight)
        record["weighted_max_load"] = float(self.weighted_max_load)
        record["weighted_gap"] = float(self.weighted_gap)
        record["w_max_used"] = (
            None if self.w_max_used is None else float(self.w_max_used)
        )
        if arrays:
            record["weights"] = (
                None
                if self.weights is None
                else np.asarray(self.weights, dtype=np.float64).tolist()
            )
            record["weighted_loads"] = (
                None
                if self.weighted_loads is None
                else np.asarray(self.weighted_loads, dtype=np.float64).tolist()
            )
        return record

    @classmethod
    def _record_kwargs(cls, record: Mapping[str, Any]) -> dict[str, Any]:
        from repro.core.result import _record_field

        kwargs = super()._record_kwargs(record)
        weights = _record_field(record, "weights")
        weighted_loads = _record_field(record, "weighted_loads")
        w_max_used = _record_field(record, "w_max_used")
        kwargs["weights"] = (
            None if weights is None else np.asarray(weights, dtype=np.float64)
        )
        kwargs["weighted_loads"] = (
            None
            if weighted_loads is None
            else np.asarray(weighted_loads, dtype=np.float64)
        )
        kwargs["w_max_used"] = None if w_max_used is None else float(w_max_used)
        return kwargs


register_record_kind(WeightedRunResult.record_kind, WeightedRunResult)

#: Backwards-compatible alias: the weighted runners used to return a separate
#: ``WeightedAllocationResult`` record; they now return the unified
#: :class:`WeightedRunResult` directly.
WeightedAllocationResult = WeightedRunResult


def weighted_gap_bound(weights: np.ndarray, n_bins: int) -> float:
    """Deterministic max-load bound of the weighted ADAPTIVE rule.

    ``max load ≤ W/n + 2·w_max``: the bin accepted the last ball while below
    ``W/n + w_max`` and the ball itself weighs at most ``w_max``.
    """
    weights = np.asarray(weights, dtype=np.float64)
    if weights.ndim != 1 or weights.size == 0:
        raise ConfigurationError("weights must be a non-empty 1-D array")
    if np.any(weights <= 0):
        raise ConfigurationError("weights must be positive")
    if n_bins <= 0:
        raise ConfigurationError(f"n_bins must be positive, got {n_bins}")
    return float(weights.sum() / n_bins + 2.0 * weights.max())


def _validate_weighted_run(
    weights: np.ndarray,
    n_bins: int,
    seed: SeedLike,
    probe_stream: ProbeStream | None,
    w_max: float | None,
) -> tuple[np.ndarray, ProbeStream, float]:
    """Shared validation of the weighted runners; returns the resolved trio."""
    weights = np.asarray(weights, dtype=np.float64)
    if weights.ndim != 1:
        raise ConfigurationError("weights must be a 1-D array")
    if weights.size and np.any(weights <= 0):
        raise ConfigurationError("weights must be positive")
    if n_bins <= 0:
        raise ConfigurationError(f"n_bins must be positive, got {n_bins}")
    if w_max is None:
        w_max = float(weights.max()) if weights.size else 1.0
    elif weights.size and w_max < weights.max():
        raise ConfigurationError("w_max must dominate every ball weight")
    stream = probe_stream or RandomProbeStream(n_bins, seed)
    if stream.n_bins != n_bins:
        raise ConfigurationError(
            "probe_stream.n_bins does not match the requested n_bins"
        )
    return weights, stream, float(w_max)


def _result(
    protocol: str,
    weights: np.ndarray,
    weighted_loads: np.ndarray,
    counts: np.ndarray,
    probes: int,
    w_max: float | None = None,
) -> WeightedRunResult:
    return WeightedRunResult(
        protocol=protocol,
        n_balls=int(weights.size),
        n_bins=int(weighted_loads.size),
        loads=counts,
        allocation_time=probes,
        costs=CostModel(probes=probes),
        weights=weights.copy(),
        weighted_loads=weighted_loads,
        w_max_used=w_max,
    )


# --------------------------------------------------------------------- #
# Weighted ADAPTIVE
# --------------------------------------------------------------------- #
def run_weighted_adaptive(
    weights: np.ndarray,
    n_bins: int,
    seed: SeedLike = None,
    *,
    probe_stream: ProbeStream | None = None,
    w_max: float | None = None,
    chunk_size: int | None = None,
    max_probes: int | None = None,
) -> WeightedRunResult:
    """Allocate weighted balls with the generalised ADAPTIVE rule.

    Runs through the chunked vectorised engine of
    :mod:`repro.core.weighted_engine`; the result (loads, counts and probe
    consumption) is bit-identical to :func:`reference_weighted_adaptive` for
    the same probe stream.

    Parameters
    ----------
    weights:
        Positive ball weights, processed in order.
    n_bins:
        Number of bins.
    seed / probe_stream:
        Randomness source (same conventions as the unit-weight protocols).
    w_max:
        Upper bound on the weights used in the acceptance threshold; defaults
        to ``weights.max()``.  Must dominate every weight.
    chunk_size:
        Balls per engine chunk (default: ambiguity-balancing heuristic).
    max_probes:
        Per-ball probe cap; exceeding it raises
        :class:`~repro.errors.SimulationError`.
    """
    weights, stream, w_max = _validate_weighted_run(
        weights, n_bins, seed, probe_stream, w_max
    )
    loads = np.zeros(n_bins, dtype=np.float64)
    probes = 0
    assignments = np.empty(weights.size, dtype=np.int64)
    if weights.size:
        thresholds = adaptive_weighted_thresholds(weights, n_bins, w_max)
        probes = chunked_weighted_assign(
            loads,
            weights,
            thresholds,
            stream,
            chunk_size=chunk_size,
            assignments=assignments,
            max_probes=max_probes,
        )
    counts = np.bincount(assignments, minlength=n_bins).astype(np.int64)
    return _result("weighted-adaptive", weights, loads, counts, probes, w_max)


def reference_weighted_adaptive(
    weights: np.ndarray,
    n_bins: int,
    seed: SeedLike = None,
    *,
    probe_stream: ProbeStream | None = None,
    w_max: float | None = None,
    max_probes: int | None = None,
) -> WeightedRunResult:
    """Ball-by-ball weighted ADAPTIVE (the seed implementation, kept verbatim).

    One Python loop iteration per ball, following the rule literally; used by
    the test-suite to certify the chunked engine and by the throughput
    benchmark as the speedup baseline.  The probe loop is capped by
    ``max_probes`` per ball (the seed's unbounded ``while True`` could spin
    forever on a probe source that never offers an acceptable bin).
    """
    weights, stream, w_max = _validate_weighted_run(
        weights, n_bins, seed, probe_stream, w_max
    )
    cap = resolve_max_probes(max_probes, n_bins)
    loads = np.zeros(n_bins, dtype=np.float64)
    counts = np.zeros(n_bins, dtype=np.int64)
    probes = 0
    placed_weight = 0.0

    for weight in weights:
        placed_weight += float(weight)
        threshold = placed_weight / n_bins + w_max
        j, used = sequential_weighted_place(loads, threshold, stream, cap)
        probes += used
        loads[j] += float(weight)
        counts[j] += 1

    return _result("weighted-adaptive", weights, loads, counts, probes, w_max)


# --------------------------------------------------------------------- #
# Weighted THRESHOLD
# --------------------------------------------------------------------- #
def run_weighted_threshold(
    weights: np.ndarray,
    n_bins: int,
    seed: SeedLike = None,
    *,
    probe_stream: ProbeStream | None = None,
    w_max: float | None = None,
    chunk_size: int | None = None,
    max_probes: int | None = None,
) -> WeightedRunResult:
    """Weighted THRESHOLD: fixed acceptance bound ``W/n + w_max``.

    Requires the full weight vector up front (as the unit-weight THRESHOLD
    requires ``m``).  The bound always leaves at least one bin acceptable
    (if every bin reached ``W/n + w_max`` the total placed weight would
    exceed ``W``), so the rule terminates for any fair probe source.
    """
    weights, stream, w_max = _validate_weighted_run(
        weights, n_bins, seed, probe_stream, w_max
    )
    loads = np.zeros(n_bins, dtype=np.float64)
    probes = 0
    assignments = np.empty(weights.size, dtype=np.int64)
    if weights.size:
        bound = fixed_weighted_threshold(weights, n_bins, w_max)
        thresholds = np.full(weights.size, bound)
        probes = chunked_weighted_assign(
            loads,
            weights,
            thresholds,
            stream,
            chunk_size=chunk_size,
            assignments=assignments,
            max_probes=max_probes,
        )
    counts = np.bincount(assignments, minlength=n_bins).astype(np.int64)
    return _result("weighted-threshold", weights, loads, counts, probes, w_max)


def reference_weighted_threshold(
    weights: np.ndarray,
    n_bins: int,
    seed: SeedLike = None,
    *,
    probe_stream: ProbeStream | None = None,
    w_max: float | None = None,
    max_probes: int | None = None,
) -> WeightedRunResult:
    """Ball-by-ball weighted THRESHOLD (validation / benchmark baseline)."""
    weights, stream, w_max = _validate_weighted_run(
        weights, n_bins, seed, probe_stream, w_max
    )
    cap = resolve_max_probes(max_probes, n_bins)
    loads = np.zeros(n_bins, dtype=np.float64)
    counts = np.zeros(n_bins, dtype=np.int64)
    probes = 0
    if weights.size:
        bound = fixed_weighted_threshold(weights, n_bins, w_max)
        for weight in weights:
            j, used = sequential_weighted_place(loads, bound, stream, cap)
            probes += used
            loads[j] += float(weight)
            counts[j] += 1
    return _result("weighted-threshold", weights, loads, counts, probes, w_max)


# --------------------------------------------------------------------- #
# Weighted greedy[d]
# --------------------------------------------------------------------- #
def run_weighted_greedy(
    weights: np.ndarray,
    n_bins: int,
    seed: SeedLike = None,
    *,
    d: int = 2,
    tie_break: str = "random",
    probe_stream: ProbeStream | None = None,
    chunk_size: int | None = None,
) -> WeightedRunResult:
    """Weighted greedy[d]: place into the least-*weighted* of ``d`` draws.

    Reuses the chunked conflict-free commit engine of
    :mod:`repro.baselines.engine` with weighted increments; the replay
    contract (one ``(m, d)`` probe matrix in ball order, tie-break priorities
    from ``stream.derive_generator(seed)``) matches the unit-weight
    greedy[d] exactly, and with all-equal weights the per-bin *counts*
    reproduce the unit protocol's loads.
    """
    if d < 1:
        raise ConfigurationError(f"d must be at least 1, got {d}")
    if tie_break not in ("random", "first"):
        raise ConfigurationError(
            f"tie_break must be 'random' or 'first', got {tie_break!r}"
        )
    weights, stream, _ = _validate_weighted_run(
        weights, n_bins, seed, probe_stream, None
    )
    loads = np.zeros(n_bins, dtype=np.float64)
    counts = np.zeros(n_bins, dtype=np.int64)
    m = weights.size
    assignments = np.empty(m, dtype=np.int64)
    if m:
        priorities = None
        if tie_break == "random":
            priorities = stream.derive_generator(seed).random(size=(m, d))
        chunked_argmin_commit(
            loads,
            lambda start, count: stream.take_matrix(count, d),
            m,
            d,
            priorities=priorities,
            chunk_size=chunk_size,
            assignments=assignments,
            weights=weights,
        )
        counts = np.bincount(assignments, minlength=n_bins).astype(np.int64)
    return _result("weighted-greedy", weights, loads, counts, m * d)


def reference_weighted_greedy(
    weights: np.ndarray,
    n_bins: int,
    seed: SeedLike = None,
    *,
    d: int = 2,
    tie_break: str = "random",
    probe_stream: ProbeStream | None = None,
) -> WeightedRunResult:
    """Ball-by-ball weighted greedy[d] (validation / benchmark baseline).

    Mirrors :func:`repro.baselines.reference.reference_greedy` with float
    loads and per-ball weight increments.
    """
    if d < 1:
        raise ConfigurationError(f"d must be at least 1, got {d}")
    if tie_break not in ("random", "first"):
        raise ConfigurationError(
            f"tie_break must be 'random' or 'first', got {tie_break!r}"
        )
    weights, stream, _ = _validate_weighted_run(
        weights, n_bins, seed, probe_stream, None
    )
    loads = np.zeros(n_bins, dtype=np.float64)
    counts = np.zeros(n_bins, dtype=np.int64)
    m = weights.size
    priorities = None
    if m and tie_break == "random":
        priorities = stream.derive_generator(seed).random(size=(m, d))
    for i in range(m):
        row = stream.take(d)
        candidate_loads = loads[row]
        min_load = candidate_loads.min()
        mask = candidate_loads == min_load
        if priorities is None or mask.sum() == 1:
            target = row[int(np.argmax(mask))]
        else:
            tied = np.flatnonzero(mask)
            target = row[tied[int(np.argmin(priorities[i][tied]))]]
        loads[target] += weights[i]
        counts[target] += 1
    return _result("weighted-greedy", weights, loads, counts, m * d)


# --------------------------------------------------------------------- #
# Weighted left[d]
# --------------------------------------------------------------------- #
def run_weighted_left(
    weights: np.ndarray,
    n_bins: int,
    seed: SeedLike = None,
    *,
    d: int = 2,
    probe_stream: ProbeStream | None = None,
    chunk_size: int | None = None,
) -> WeightedRunResult:
    """Weighted left[d]: one bin per group, leftmost least-*weighted* wins.

    Vöcking's asymmetric tie break is exactly the first-minimum rule of the
    chunked conflict-free commit engine, here with weighted increments.  The
    replay contract matches the unit left[d]: with a ``probe_stream`` the
    groups must be of equal size and the ``g``-th probe of a ball maps to
    ``g·(n/d) + probe mod (n/d)``; seeded runs draw the one-per-group
    choices from an up-front float-offset matrix (any group sizes), via
    :func:`repro.baselines.left.seeded_group_choices`.  With all-equal
    weights the per-bin counts reproduce the unit protocol's loads
    probe-for-probe.
    """
    if d < 1:
        raise ConfigurationError(f"d must be at least 1, got {d}")
    weights, stream, _ = _validate_weighted_run(
        weights, n_bins, seed, probe_stream, None
    )
    if probe_stream is not None:
        group_base, size = replay_group_map(n_bins, d)  # validates equal groups
        source = (
            lambda start, count: group_base + stream.take_matrix(count, d) % size
        )
    else:
        source = None
    return _weighted_left_commit(weights, n_bins, d, stream, source, chunk_size)


def _weighted_left_commit(
    weights: np.ndarray,
    n_bins: int,
    d: int,
    stream: ProbeStream,
    source,
    chunk_size: int | None,
) -> WeightedRunResult:
    """Single home of the weighted left[d] commit body.

    ``source`` is the replay-mode candidate source (``None`` selects the
    seeded float-offset sampling against ``stream.generator``); shared by
    :func:`run_weighted_left` and the registry protocol so the two cannot
    drift.
    """
    loads = np.zeros(n_bins, dtype=np.float64)
    counts = np.zeros(n_bins, dtype=np.int64)
    m = weights.size
    assignments = np.empty(m, dtype=np.int64)
    if m:
        if source is None:
            source = matrix_source(
                seeded_group_choices(n_bins, d, m, stream.generator)
            )
        chunked_argmin_commit(
            loads,
            source,
            m,
            d,
            chunk_size=chunk_size,
            assignments=assignments,
            weights=weights,
        )
        counts = np.bincount(assignments, minlength=n_bins).astype(np.int64)
    return _result("weighted-left", weights, loads, counts, m * d)


def reference_weighted_left(
    weights: np.ndarray,
    n_bins: int,
    seed: SeedLike = None,
    *,
    d: int = 2,
    probe_stream: ProbeStream | None = None,
) -> WeightedRunResult:
    """Ball-by-ball weighted left[d] (validation / benchmark baseline).

    Mirrors :func:`repro.baselines.reference.reference_left` with float
    loads and per-ball weight increments.
    """
    if d < 1:
        raise ConfigurationError(f"d must be at least 1, got {d}")
    weights, stream, _ = _validate_weighted_run(
        weights, n_bins, seed, probe_stream, None
    )
    loads = np.zeros(n_bins, dtype=np.float64)
    counts = np.zeros(n_bins, dtype=np.int64)
    m = weights.size
    if probe_stream is not None:
        group_base, size = replay_group_map(n_bins, d)
        for i in range(m):
            row = group_base + stream.take(d) % size
            target = row[int(np.argmin(loads[row]))]
            loads[target] += weights[i]
            counts[target] += 1
    elif m:
        choices = seeded_group_choices(n_bins, d, m, stream.generator)
        for i in range(m):
            row = choices[i]
            target = row[int(np.argmin(loads[row]))]
            loads[target] += weights[i]
            counts[target] += 1
    return _result("weighted-left", weights, loads, counts, m * d)


# --------------------------------------------------------------------- #
# Weighted (d,k)-memory
# --------------------------------------------------------------------- #
def run_weighted_memory(
    weights: np.ndarray,
    n_bins: int,
    seed: SeedLike = None,
    *,
    d: int = 1,
    k: int = 1,
    probe_stream: ProbeStream | None = None,
    chunk_size: int | None = None,
) -> WeightedRunResult:
    """Weighted (d,k)-memory: remembered bins compete on weighted load.

    Candidates are the ``d`` fresh draws followed by the ``k`` remembered
    bins; the first least weighted-loaded candidate receives the ball's
    weight, and the ``k`` least loaded distinct candidates are remembered.
    Runs through :func:`repro.baselines.memory_engine.chunked_weighted_memory_commit`
    — bulk fresh draws with the scalar float commit rule, since the
    continuous load values cannot ride the integer provisional scan; see
    the engine module for the honest cost accounting.  With all-equal
    weights the per-bin counts reproduce the unit protocol probe-for-probe.
    """
    if d < 1:
        raise ConfigurationError(f"d must be at least 1, got {d}")
    if k < 0:
        raise ConfigurationError(f"k must be non-negative, got {k}")
    weights, stream, _ = _validate_weighted_run(
        weights, n_bins, seed, probe_stream, None
    )
    loads = np.zeros(n_bins, dtype=np.float64)
    counts = np.zeros(n_bins, dtype=np.int64)
    m = weights.size
    assignments = np.empty(m, dtype=np.int64)
    if m:
        chunked_weighted_memory_commit(
            stream,
            loads,
            [],
            weights,
            d,
            k,
            assignments=assignments,
            chunk_size=chunk_size,
        )
        counts = np.bincount(assignments, minlength=n_bins).astype(np.int64)
    return _result("weighted-memory", weights, loads, counts, m * d)


def reference_weighted_memory(
    weights: np.ndarray,
    n_bins: int,
    seed: SeedLike = None,
    *,
    d: int = 1,
    k: int = 1,
    probe_stream: ProbeStream | None = None,
) -> WeightedRunResult:
    """Ball-by-ball weighted (d,k)-memory (validation baseline).

    Mirrors :func:`repro.baselines.reference.reference_memory` with float
    loads and per-ball weight increments: the remembered set holds the
    ``k`` least weighted-loaded *distinct* candidates, stable order.
    """
    if d < 1:
        raise ConfigurationError(f"d must be at least 1, got {d}")
    if k < 0:
        raise ConfigurationError(f"k must be non-negative, got {k}")
    weights, stream, _ = _validate_weighted_run(
        weights, n_bins, seed, probe_stream, None
    )
    loads = np.zeros(n_bins, dtype=np.float64)
    counts = np.zeros(n_bins, dtype=np.int64)
    memory: np.ndarray = np.empty(0, dtype=np.int64)
    for i in range(weights.size):
        candidates = np.concatenate((stream.take(d), memory))
        target = candidates[int(np.argmin(loads[candidates]))]
        loads[target] += weights[i]
        counts[target] += 1
        if k:
            _, first = np.unique(candidates, return_index=True)
            unique = candidates[np.sort(first)]
            keep = np.argsort(loads[unique], kind="stable")[:k]
            memory = unique[keep]
    return _result(
        "weighted-memory", weights, loads, counts, int(weights.size) * d
    )


# --------------------------------------------------------------------- #
# Registry protocols
# --------------------------------------------------------------------- #
class _WeightedProtocolBase(AllocationProtocol):
    """Shared scaffolding of the weighted registry protocols.

    Weights are drawn up front from the probe stream's auxiliary generator
    (:meth:`~repro.runtime.probes.ProbeStream.derive_generator`), so a run is
    a pure function of ``(seed, weight_dist, dist params)`` for seeded
    streams and replay-deterministic for fixed streams — the same contract
    as the greedy tie-break noise.

    ``batches`` stays ``False`` for the whole weighted family: the weighted
    ADAPTIVE/THRESHOLD engine's probe consumption is data-dependent on the
    evolving *float* loads (no rank shortcut), and the weighted commit
    regimes are deliberately scalar per the roadmap's standing constraints —
    so multi-trial batches honestly run through the base-class per-trial
    :meth:`~repro.core.protocol.AllocationProtocol.allocate_batch` loop
    rather than a second trial-axis engine.
    """

    def __init__(
        self,
        weight_dist: str = "pareto",
        w_max: float | None = None,
        chunk_size: int | None = None,
        **dist_params: Any,
    ) -> None:
        if weight_dist not in WEIGHT_DISTRIBUTIONS:
            raise ConfigurationError(
                f"unknown weight distribution {weight_dist!r}; "
                f"available: {sorted(WEIGHT_DISTRIBUTIONS)}"
            )
        if w_max is not None and w_max <= 0:
            raise ConfigurationError(f"w_max must be positive, got {w_max}")
        if chunk_size is not None and chunk_size < 1:
            raise ConfigurationError(f"chunk_size must be positive, got {chunk_size}")
        self.weight_dist = weight_dist
        self.w_max = w_max
        self.chunk_size = chunk_size
        self.dist_params = dict(dist_params)

    def params(self) -> dict[str, Any]:
        return {
            "weight_dist": self.weight_dist,
            "w_max": self.w_max,
            "chunk_size": self.chunk_size,
            **self.dist_params,
        }

    def _draw_weights(
        self, n_balls: int, stream: ProbeStream, seed: SeedLike
    ) -> np.ndarray:
        return make_weights(
            self.weight_dist, n_balls, stream.derive_generator(seed), **self.dist_params
        )

    def _run(
        self, weights: np.ndarray, n_bins: int, stream: ProbeStream, seed: SeedLike
    ) -> WeightedRunResult:
        raise NotImplementedError

    def _stamp(self, run: WeightedRunResult) -> WeightedRunResult:
        """Add registry-level provenance to a runner-produced record."""
        run.protocol = self.name
        run.params = self.params()
        if run.w_max_used is None:
            used = self.w_max
            if used is None and run.weights is not None and run.weights.size:
                used = float(run.weights.max())
            run.w_max_used = 1.0 if used is None else used
        return run

    def begin(
        self,
        n_balls: int,
        n_bins: int,
        seed: SeedLike = None,
        *,
        probe_stream: ProbeStream | None = None,
        record_trace: bool = False,
    ) -> ProtocolSession:
        self.validate_size(n_balls, n_bins)
        stream = probe_stream or RandomProbeStream(n_bins, seed)
        if stream.n_bins != n_bins:
            raise ConfigurationError(
                "probe_stream.n_bins does not match the requested n_bins"
            )
        weights = self._draw_weights(n_balls, stream, seed)
        return self._begin_session(weights, n_bins, stream, seed)

    def _begin_session(
        self, weights: np.ndarray, n_bins: int, stream: ProbeStream, seed: SeedLike
    ) -> ProtocolSession:
        raise NotImplementedError

    def allocate(
        self,
        n_balls: int,
        n_bins: int,
        seed: SeedLike = None,
        *,
        probe_stream: ProbeStream | None = None,
        record_trace: bool = False,
    ) -> RunResult:
        self.validate_size(n_balls, n_bins)
        stream = probe_stream or RandomProbeStream(n_bins, seed)
        if stream.n_bins != n_bins:
            raise ConfigurationError(
                "probe_stream.n_bins does not match the requested n_bins"
            )
        weights = self._draw_weights(n_balls, stream, seed)
        # The runner produces the unified record; _stamp adds the
        # registry-level provenance (protocol name, constructor params, and
        # the resolved weight bound even when it defaulted to weights.max()).
        return self._stamp(self._run(weights, n_bins, stream, seed))


class _WeightedEngineSession(ProtocolSession):
    """Streaming weighted ADAPTIVE/THRESHOLD via the chunked engine.

    The full weight vector and the per-ball thresholds are fixed up front
    (exactly as in the one-shot runners), so each :meth:`place` call simply
    drives :func:`~repro.core.weighted_engine.chunked_weighted_assign` over
    the next slice — the engine's chunk invariance makes any split of the
    placement bit-identical to the one-shot run.
    """

    def __init__(
        self,
        protocol: "_WeightedProtocolBase",
        n_bins: int,
        stream: ProbeStream,
        weights: np.ndarray,
        thresholds: np.ndarray,
        w_max: float,
    ) -> None:
        super().__init__(protocol, int(weights.size), n_bins, stream)
        self._weights = weights
        self._thresholds = thresholds
        self._w_max = w_max
        self._wloads = np.zeros(n_bins, dtype=np.float64)
        self._counts = np.zeros(n_bins, dtype=np.int64)
        self._probes = 0
        self.assignments = np.empty(weights.size, dtype=np.int64)

    @property
    def loads(self) -> np.ndarray:
        return self._counts

    @property
    def weighted_loads(self) -> np.ndarray:
        return self._wloads

    @property
    def probes(self) -> int:
        return self._probes

    def _place(self, k: int) -> None:
        start = self.placed
        segment = self.assignments[start : start + k]
        self._probes += chunked_weighted_assign(
            self._wloads,
            self._weights[start : start + k],
            self._thresholds[start : start + k],
            self.stream,
            chunk_size=self.protocol.chunk_size,
            assignments=segment,
        )
        np.add.at(self._counts, segment, 1)

    def _finalize(self) -> WeightedRunResult:
        counts = np.bincount(self.assignments, minlength=self.n_bins).astype(
            np.int64
        )
        run = _result(
            self.protocol.name,
            self._weights,
            self._wloads,
            counts,
            self._probes,
            self._w_max,
        )
        return self.protocol._stamp(run)


@register_protocol
class WeightedAdaptiveProtocol(_WeightedProtocolBase):
    """Registry wrapper for :func:`run_weighted_adaptive`."""

    name = "weighted-adaptive"
    streaming = True

    def _begin_session(
        self, weights: np.ndarray, n_bins: int, stream: ProbeStream, seed: SeedLike
    ) -> _WeightedEngineSession:
        weights, stream, w_max = _validate_weighted_run(
            weights, n_bins, None, stream, self.w_max
        )
        thresholds = (
            adaptive_weighted_thresholds(weights, n_bins, w_max)
            if weights.size
            else np.empty(0, dtype=np.float64)
        )
        return _WeightedEngineSession(self, n_bins, stream, weights, thresholds, w_max)

    def _run(
        self, weights: np.ndarray, n_bins: int, stream: ProbeStream, seed: SeedLike
    ) -> WeightedRunResult:
        return run_weighted_adaptive(
            weights,
            n_bins,
            probe_stream=stream,
            w_max=self.w_max,
            chunk_size=self.chunk_size,
        )


@register_protocol
class WeightedThresholdProtocol(_WeightedProtocolBase):
    """Registry wrapper for :func:`run_weighted_threshold`."""

    name = "weighted-threshold"
    streaming = True

    def _begin_session(
        self, weights: np.ndarray, n_bins: int, stream: ProbeStream, seed: SeedLike
    ) -> _WeightedEngineSession:
        weights, stream, w_max = _validate_weighted_run(
            weights, n_bins, None, stream, self.w_max
        )
        if weights.size:
            bound = fixed_weighted_threshold(weights, n_bins, w_max)
            thresholds = np.full(weights.size, bound)
        else:
            thresholds = np.empty(0, dtype=np.float64)
        return _WeightedEngineSession(self, n_bins, stream, weights, thresholds, w_max)

    def _run(
        self, weights: np.ndarray, n_bins: int, stream: ProbeStream, seed: SeedLike
    ) -> WeightedRunResult:
        return run_weighted_threshold(
            weights,
            n_bins,
            probe_stream=stream,
            w_max=self.w_max,
            chunk_size=self.chunk_size,
        )


class _WeightedDChoiceSession(DChoiceSession):
    """Streaming weighted d-choice session finalising to the unified record.

    Shared by the weighted greedy[d] and weighted left[d] registry
    protocols: the engine-side behaviour is
    :class:`~repro.baselines.greedy.DChoiceSession` with weighted
    increments; only the finished record differs.
    """

    def _finalize(self) -> WeightedRunResult:
        run = _result(
            self.protocol.name,
            self._weights,
            self._loads,
            np.bincount(self.assignments, minlength=self.n_bins).astype(np.int64),
            self.n_balls * self.d,
        )
        return self.protocol._stamp(run)


@register_protocol
class WeightedGreedyProtocol(_WeightedProtocolBase):
    """Registry wrapper for :func:`run_weighted_greedy`."""

    name = "weighted-greedy"
    streaming = True

    def _begin_session(
        self, weights: np.ndarray, n_bins: int, stream: ProbeStream, seed: SeedLike
    ) -> ProtocolSession:
        weights, stream, _ = _validate_weighted_run(
            weights, n_bins, None, stream, None
        )
        m, d = int(weights.size), self.d
        priorities = None
        if m and self.tie_break == "random":
            priorities = stream.derive_generator(seed).random(size=(m, d))
        return _WeightedDChoiceSession(
            self,
            m,
            n_bins,
            stream,
            d=d,
            source=lambda start, count: stream.take_matrix(count, d),
            priorities=priorities,
            weights=weights,
            chunk_size=self.chunk_size,
        )

    def __init__(
        self,
        d: int = 2,
        tie_break: str = "random",
        weight_dist: str = "pareto",
        chunk_size: int | None = None,
        **dist_params: Any,
    ) -> None:
        if d < 1:
            raise ConfigurationError(f"d must be at least 1, got {d}")
        if tie_break not in ("random", "first"):
            raise ConfigurationError(
                f"tie_break must be 'random' or 'first', got {tie_break!r}"
            )
        super().__init__(
            weight_dist=weight_dist, w_max=None, chunk_size=chunk_size, **dist_params
        )
        self.d = int(d)
        self.tie_break = tie_break

    def params(self) -> dict[str, Any]:
        params = super().params()
        params.pop("w_max", None)
        return {"d": self.d, "tie_break": self.tie_break, **params}

    def _run(
        self, weights: np.ndarray, n_bins: int, stream: ProbeStream, seed: SeedLike
    ) -> WeightedRunResult:
        return run_weighted_greedy(
            weights,
            n_bins,
            seed,
            d=self.d,
            tie_break=self.tie_break,
            probe_stream=stream,
            chunk_size=self.chunk_size,
        )


@register_protocol
class WeightedLeftProtocol(_WeightedProtocolBase):
    """Registry wrapper for :func:`run_weighted_left`.

    Mirrors :class:`~repro.baselines.left.LeftProtocol`'s replay contract:
    seeded runs sample each ball's in-group offsets up front (any group
    sizes); an explicit probe stream requires equal groups so uniform
    probes map onto uniform in-group choices.
    """

    name = "weighted-left"
    streaming = True

    def __init__(
        self,
        d: int = 2,
        weight_dist: str = "pareto",
        chunk_size: int | None = None,
        **dist_params: Any,
    ) -> None:
        if d < 1:
            raise ConfigurationError(f"d must be at least 1, got {d}")
        super().__init__(
            weight_dist=weight_dist, w_max=None, chunk_size=chunk_size, **dist_params
        )
        self.d = int(d)

    def params(self) -> dict[str, Any]:
        params = super().params()
        params.pop("w_max", None)
        return {"d": self.d, **params}

    def _source(self, n_balls: int, n_bins: int, stream, replay: bool):
        if replay:
            group_base, size = replay_group_map(n_bins, self.d)
            return (
                lambda start, count: group_base
                + stream.take_matrix(count, self.d) % size
            )
        return matrix_source(
            seeded_group_choices(n_bins, self.d, n_balls, stream.generator)
        )

    def begin(
        self,
        n_balls: int,
        n_bins: int,
        seed: SeedLike = None,
        *,
        probe_stream: ProbeStream | None = None,
        record_trace: bool = False,
    ) -> ProtocolSession:
        self.validate_size(n_balls, n_bins)
        stream = probe_stream or RandomProbeStream(n_bins, seed)
        if stream.n_bins != n_bins:
            raise ConfigurationError(
                "probe_stream.n_bins does not match the requested n_bins"
            )
        weights = self._draw_weights(n_balls, stream, seed)
        weights, stream, _ = _validate_weighted_run(
            weights, n_bins, None, stream, None
        )
        return _WeightedDChoiceSession(
            self,
            int(weights.size),
            n_bins,
            stream,
            d=self.d,
            source=self._source(n_balls, n_bins, stream, probe_stream is not None),
            weights=weights,
            chunk_size=self.chunk_size,
        )

    def allocate(
        self,
        n_balls: int,
        n_bins: int,
        seed: SeedLike = None,
        *,
        probe_stream: ProbeStream | None = None,
        record_trace: bool = False,
    ) -> RunResult:
        self.validate_size(n_balls, n_bins)
        stream = probe_stream or RandomProbeStream(n_bins, seed)
        if stream.n_bins != n_bins:
            raise ConfigurationError(
                "probe_stream.n_bins does not match the requested n_bins"
            )
        weights = self._draw_weights(n_balls, stream, seed)
        weights, stream, _ = _validate_weighted_run(
            weights, n_bins, None, stream, None
        )
        source = (
            self._source(n_balls, n_bins, stream, True)
            if probe_stream is not None
            else None
        )
        return self._stamp(
            _weighted_left_commit(
                weights, n_bins, self.d, stream, source, self.chunk_size
            )
        )


class _WeightedMemorySession(ProtocolSession):
    """Streaming weighted (d,k)-memory: remembered set persists across steps.

    The weight vector is fixed up front (exactly as in the one-shot run) and
    each ``place`` call drives the chunk-drawn scalar commit over the next
    slice; the scalar state (float loads, remembered set) is exact at every
    boundary, so any split is bit-identical to the one-shot run.
    """

    def __init__(self, protocol, n_bins, stream, weights) -> None:
        super().__init__(protocol, int(weights.size), n_bins, stream)
        self._weights = weights
        self._wloads = np.zeros(n_bins, dtype=np.float64)
        self._counts = np.zeros(n_bins, dtype=np.int64)
        self._memory: list[int] = []
        self.assignments = np.empty(weights.size, dtype=np.int64)

    @property
    def loads(self) -> np.ndarray:
        return self._counts

    @property
    def weighted_loads(self) -> np.ndarray:
        return self._wloads

    @property
    def probes(self) -> int:
        return self.placed * self.protocol.d

    def _place(self, k: int) -> None:
        start = self.placed
        segment = self.assignments[start : start + k]
        self._memory = chunked_weighted_memory_commit(
            self.stream,
            self._wloads,
            self._memory,
            self._weights[start : start + k],
            self.protocol.d,
            self.protocol.k,
            assignments=segment,
            chunk_size=self.protocol.chunk_size,
        )
        np.add.at(self._counts, segment, 1)

    def _finalize(self) -> WeightedRunResult:
        # The incrementally maintained per-bin counts are exactly the final
        # tally once every ball is placed.
        run = _result(
            self.protocol.name,
            self._weights,
            self._wloads,
            self._counts,
            self.n_balls * self.protocol.d,
        )
        return self.protocol._stamp(run)


@register_protocol
class WeightedMemoryProtocol(_WeightedProtocolBase):
    """Registry wrapper for :func:`run_weighted_memory`."""

    name = "weighted-memory"
    streaming = True

    def __init__(
        self,
        d: int = 1,
        k: int = 1,
        weight_dist: str = "pareto",
        chunk_size: int | None = None,
        **dist_params: Any,
    ) -> None:
        if d < 1:
            raise ConfigurationError(f"d must be at least 1, got {d}")
        if k < 0:
            raise ConfigurationError(f"k must be non-negative, got {k}")
        super().__init__(
            weight_dist=weight_dist, w_max=None, chunk_size=chunk_size, **dist_params
        )
        self.d = int(d)
        self.k = int(k)

    def params(self) -> dict[str, Any]:
        params = super().params()
        params.pop("w_max", None)
        return {"d": self.d, "k": self.k, **params}

    def _begin_session(
        self, weights: np.ndarray, n_bins: int, stream: ProbeStream, seed: SeedLike
    ) -> ProtocolSession:
        weights, stream, _ = _validate_weighted_run(
            weights, n_bins, None, stream, None
        )
        return _WeightedMemorySession(self, n_bins, stream, weights)

    def _run(
        self, weights: np.ndarray, n_bins: int, stream: ProbeStream, seed: SeedLike
    ) -> WeightedRunResult:
        return run_weighted_memory(
            weights,
            n_bins,
            d=self.d,
            k=self.k,
            probe_stream=stream,
            chunk_size=self.chunk_size,
        )
