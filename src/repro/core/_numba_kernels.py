"""``@njit`` kernels for the deliberately-scalar (d,k)-memory regimes.

Importing this module requires numba (the ``accel`` extra); the
:class:`~repro.core.backend.NumbaBackend` gates on that import and reports
the install hint when it fails, so the rest of the package never needs
numba.

Each kernel replays the literal sequential hand-off rule of
:func:`repro.core.backend.memory_hand_off` /
:func:`~repro.core.backend.weighted_memory_hand_off` over one chunk of
fresh draws, operating directly on the engine's int64/float64 state:

* the first strictly-least-loaded candidate (fresh row, then remembered
  bins) wins — a strict ``<`` scan keeps the first minimum, exactly like
  the Python loop;
* the ``k`` least loaded *distinct* candidates are remembered, in stable
  order — duplicates are dropped first-occurrence-first and the insertion
  sort below shifts only on strictly greater loads, which is precisely the
  stability of ``list.sort``;
* integer loads add 1, weighted loads add the ball's float64 weight with
  the same single IEEE ``+`` the scalar rule performs.

Results are therefore bit-identical to the scalar loops for every input,
which the cross-backend suite certifies under replay.
"""

from __future__ import annotations

import numpy as np
from numba import njit

__all__ = ["memory_chunk", "weighted_memory_chunk"]


@njit(cache=True)
def memory_chunk(counts, fresh, memory, mem_len, k, assignments, base, record):
    """One chunk of the unit-weight (d,k)-memory hand-off.

    ``counts`` (int64 per-bin loads) and ``memory`` (int64 buffer holding
    ``mem_len`` remembered bins) are mutated in place; returns the new
    ``mem_len``.  ``fresh`` is the chunk's ``(count, d)`` fresh-draw matrix;
    ball ``i`` writes its bin to ``assignments[base + i]`` when ``record``.
    """
    count, d = fresh.shape
    uniq = np.empty(d + max(k, mem_len), dtype=np.int64)
    for i in range(count):
        best = fresh[i, 0]
        best_load = counts[best]
        for c in range(1, d):
            cand = fresh[i, c]
            load = counts[cand]
            if load < best_load:
                best = cand
                best_load = load
        for c in range(mem_len):
            cand = memory[c]
            load = counts[cand]
            if load < best_load:
                best = cand
                best_load = load
        counts[best] = best_load + 1
        if record:
            assignments[base + i] = best
        if k > 0:
            u = 0
            for c in range(d + mem_len):
                cand = fresh[i, c] if c < d else memory[c - d]
                dup = False
                for j in range(u):
                    if uniq[j] == cand:
                        dup = True
                        break
                if not dup:
                    uniq[u] = cand
                    u += 1
            for a in range(1, u):
                cand = uniq[a]
                key = counts[cand]
                j = a - 1
                while j >= 0 and counts[uniq[j]] > key:
                    uniq[j + 1] = uniq[j]
                    j -= 1
                uniq[j + 1] = cand
            mem_len = min(k, u)
            for j in range(mem_len):
                memory[j] = uniq[j]
    return mem_len


@njit(cache=True)
def weighted_memory_chunk(
    loads, fresh, memory, mem_len, k, weights, assignments, base, record
):
    """One chunk of the weighted (d,k)-memory hand-off (float64 loads).

    Same structure as :func:`memory_chunk`; ``weights`` holds this chunk's
    ball weights (aligned with the rows of ``fresh``) and each placement
    adds its ball's weight instead of 1.  Returns the new ``mem_len``.
    """
    count, d = fresh.shape
    uniq = np.empty(d + max(k, mem_len), dtype=np.int64)
    for i in range(count):
        best = fresh[i, 0]
        best_load = loads[best]
        for c in range(1, d):
            cand = fresh[i, c]
            load = loads[cand]
            if load < best_load:
                best = cand
                best_load = load
        for c in range(mem_len):
            cand = memory[c]
            load = loads[cand]
            if load < best_load:
                best = cand
                best_load = load
        loads[best] = best_load + weights[i]
        if record:
            assignments[base + i] = best
        if k > 0:
            u = 0
            for c in range(d + mem_len):
                cand = fresh[i, c] if c < d else memory[c - d]
                dup = False
                for j in range(u):
                    if uniq[j] == cand:
                        dup = True
                        break
                if not dup:
                    uniq[u] = cand
                    u += 1
            for a in range(1, u):
                cand = uniq[a]
                key = loads[cand]
                j = a - 1
                while j >= 0 and loads[uniq[j]] > key:
                    uniq[j + 1] = uniq[j]
                    j -= 1
                uniq[j + 1] = cand
            mem_len = min(k, u)
            for j in range(mem_len):
                memory[j] = uniq[j]
    return mem_len
