"""The THRESHOLD protocol (Figure 2; Czumaj & Stemann, re-analysed in §4).

Every ball samples bins uniformly at random until it finds one with load
strictly below ``m/n + 1``.  The maximum load is therefore at most
``ceil(m/n) + 1`` deterministically; Theorem 4.1 of the paper shows the
allocation time is ``m + O(m^{3/4} n^{1/4})`` w.h.p. and in expectation.
Unlike ADAPTIVE the protocol must know ``m`` in advance, and Lemma 4.2 shows
its final load vector is far less smooth (for ``m = n²`` the quadratic
potential is ``Ω(n^{9/8})`` and the max−min gap ``Ω(n^{1/8})``).

Because the acceptance limit is a single constant for the entire run, the
whole allocation is one window of :func:`repro.core.window.fill_window`.  An
optional ``checkpoint`` grid still records the trajectory for the smoothness
experiments.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from repro.core.potentials import (
    DEFAULT_EPSILON,
    exponential_potential,
    quadratic_potential,
)
from repro.core.protocol import (
    AllocationProtocol,
    batch_streams,
    register_protocol,
)
from repro.core.result import AllocationResult
from repro.core.session import StagedWindowSession, run_staged_batch
from repro.core.thresholds import acceptance_limit
from repro.core.window import fill_window
from repro.errors import ConfigurationError
from repro.runtime.costs import CostModel
from repro.runtime.probes import ProbeStream, RandomProbeStream
from repro.runtime.rng import SeedLike
from repro.runtime.trace import StageRecord, Trace

__all__ = ["ThresholdProtocol", "run_threshold"]


@register_protocol
class ThresholdProtocol(AllocationProtocol):
    """THRESHOLD allocation (Figure 2 of the paper).

    Parameters
    ----------
    offset:
        Additive constant of the acceptance threshold ``m/n + offset``
        (``1`` in the paper).
    block_size:
        Optional fixed probe block size for the vectorised engine.
    """

    name = "threshold"
    streaming = True
    batches = True

    def __init__(self, offset: int = 1, block_size: int | None = None) -> None:
        if offset < 1:
            raise ConfigurationError(
                "offset must be at least 1: with offset 0 the THRESHOLD protocol "
                "cannot place the final ball of a perfectly filled stage"
            )
        if block_size is not None and block_size <= 0:
            raise ConfigurationError("block_size must be positive when given")
        self.offset = int(offset)
        self.block_size = block_size

    def params(self) -> dict[str, Any]:
        return {"offset": self.offset, "block_size": self.block_size}

    def begin(
        self,
        n_balls: int,
        n_bins: int,
        seed: SeedLike = None,
        *,
        probe_stream: ProbeStream | None = None,
        record_trace: bool = False,
    ) -> "_ThresholdSession":
        self.validate_size(n_balls, n_bins)
        stream = probe_stream or RandomProbeStream(n_bins, seed)
        return _ThresholdSession(
            self,
            n_balls,
            n_bins,
            stream,
            block_size=self.block_size,
            # The one-shot non-traced run logs no stage checkpoints (the
            # whole run is one window); trace mode chunks by stage.
            checkpoint_stages=False,
            record_trace=record_trace,
        )

    def allocate(
        self,
        n_balls: int,
        n_bins: int,
        seed: SeedLike = None,
        *,
        probe_stream: ProbeStream | None = None,
        record_trace: bool = False,
    ) -> AllocationResult:
        self.validate_size(n_balls, n_bins)
        stream = probe_stream or RandomProbeStream(n_bins, seed)
        if stream.n_bins != n_bins:
            raise ConfigurationError(
                "probe_stream.n_bins does not match the requested n_bins"
            )

        loads = np.zeros(n_bins, dtype=np.int64)
        costs = CostModel()
        trace = Trace() if record_trace else None
        total_probes = 0

        if n_balls:
            limit = acceptance_limit(n_balls, n_bins, self.offset)
            if record_trace:
                # Fill stage-sized chunks so the trace is comparable to
                # ADAPTIVE's (the acceptance limit stays the global one).
                placed = 0
                stage = 0
                while placed < n_balls:
                    chunk = min(n_bins, n_balls - placed)
                    outcome = fill_window(
                        loads, limit, chunk, stream, block_size=self.block_size
                    )
                    placed += chunk
                    total_probes += outcome.probes
                    costs.add_probes(outcome.probes)
                    costs.log_probe_checkpoint()
                    trace.append(
                        StageRecord(
                            stage=stage,
                            balls_placed=chunk,
                            probes=outcome.probes,
                            max_load=int(loads.max()),
                            min_load=int(loads.min()),
                            quadratic_potential=quadratic_potential(loads, placed),
                            exponential_potential=exponential_potential(
                                loads, placed, DEFAULT_EPSILON
                            ),
                        )
                    )
                    stage += 1
            else:
                outcome = fill_window(
                    loads, limit, n_balls, stream, block_size=self.block_size
                )
                total_probes = outcome.probes
                costs.add_probes(outcome.probes)

        return AllocationResult(
            protocol=self.name,
            n_balls=n_balls,
            n_bins=n_bins,
            loads=loads,
            allocation_time=total_probes,
            costs=costs,
            trace=trace,
            params=self.params(),
        )

    def allocate_batch(
        self,
        n_balls: int,
        n_bins: int,
        seeds=None,
        *,
        probe_streams=None,
        record_trace: bool = False,
    ) -> list[AllocationResult]:
        if record_trace:
            # Traced runs chunk by stage and record potentials per trial;
            # the per-trial loop stays the exact, honest path for them.
            return super().allocate_batch(
                n_balls,
                n_bins,
                seeds,
                probe_streams=probe_streams,
                record_trace=True,
            )
        self.validate_size(n_balls, n_bins)
        batch = batch_streams(n_bins, seeds, probe_streams)
        windows = (
            [(acceptance_limit(n_balls, n_bins, self.offset), n_balls)]
            if n_balls
            else []
        )
        return run_staged_batch(
            self,
            n_balls,
            n_bins,
            batch,
            windows,
            block_size=self.block_size,
            # The one-shot non-traced run is a single window with one flat
            # add_probes call and no checkpoints; mirror that cost model.
            checkpoint_stages=False,
        )


class _ThresholdSession(StagedWindowSession):
    """Streaming THRESHOLD: one fixed acceptance limit for the whole run."""

    def _limit_for_ball(self, i: int) -> int:
        return acceptance_limit(self.n_balls, self.n_bins, self.protocol.offset)


def run_threshold(
    n_balls: int,
    n_bins: int,
    seed: SeedLike = None,
    *,
    offset: int = 1,
    record_trace: bool = False,
) -> AllocationResult:
    """Functional one-liner for :class:`ThresholdProtocol`.

    Examples
    --------
    >>> result = run_threshold(10_000, 1_000, seed=0)
    >>> result.max_load <= 10 + 1
    True
    """
    return ThresholdProtocol(offset=offset).allocate(
        n_balls, n_bins, seed, record_trace=record_trace
    )
