"""Protocol interface and registry.

Every allocation scheme in the package — the paper's ADAPTIVE and THRESHOLD,
and every baseline of Table 1 — implements :class:`AllocationProtocol`.  The
registry lets experiments and the CLI refer to protocols by name
(``"adaptive"``, ``"threshold"``, ``"greedy"``, …) and instantiate them from
plain keyword dictionaries, which keeps the experiment configuration
serialisable.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import TYPE_CHECKING, Any, Iterable, Sequence

from repro.core.result import AllocationResult

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.core.session import ProtocolSession
from repro.errors import ConfigurationError
from repro.runtime.probes import BatchedProbeStream, ProbeStream
from repro.runtime.rng import SeedLike

__all__ = [
    "AllocationProtocol",
    "batch_streams",
    "register_protocol",
    "get_protocol",
    "available_protocols",
    "make_protocol",
]


def _normalize_batch_args(
    seeds: Sequence[SeedLike] | None,
    probe_streams: Sequence[ProbeStream] | None,
) -> tuple[Sequence[SeedLike] | None, int]:
    """Shared validation for ``allocate_batch``: one of seeds/streams, its length."""
    if (seeds is None) == (probe_streams is None):
        raise ConfigurationError(
            "allocate_batch needs exactly one of seeds or probe_streams"
        )
    source = seeds if seeds is not None else probe_streams
    trials = len(source)  # type: ignore[arg-type]
    if trials < 1:
        raise ConfigurationError("allocate_batch needs at least one trial")
    return seeds, trials


def batch_streams(
    n_bins: int,
    seeds: Sequence[SeedLike] | None,
    probe_streams: Sequence[ProbeStream] | None,
) -> BatchedProbeStream:
    """Build the per-trial stream bundle for a batched allocate call.

    Child ``i`` is exactly the stream trial ``i``'s single-trial run would
    use: a fresh :class:`~repro.runtime.probes.RandomProbeStream` seeded
    with ``seeds[i]``, or the caller's explicit ``probe_streams[i]``
    (replay/testing).  Shared by every ``batches = True`` protocol.
    """
    _normalize_batch_args(seeds, probe_streams)
    if probe_streams is not None:
        for stream in probe_streams:
            if stream.n_bins != n_bins:
                raise ConfigurationError(
                    "probe_stream.n_bins does not match the requested n_bins"
                )
        return BatchedProbeStream(list(probe_streams))
    return BatchedProbeStream.from_seeds(n_bins, list(seeds))


class AllocationProtocol(ABC):
    """Abstract sequential balls-into-bins allocation protocol.

    Subclasses implement :meth:`allocate`; they must

    * place exactly ``m`` balls into ``n`` bins,
    * report the number of random bin choices consumed as
      ``AllocationResult.allocation_time``, and
    * be deterministic given a seed (or a supplied probe stream).
    """

    #: Registry name; subclasses override this class attribute.
    name: str = "abstract"

    def __init__(self, **params: Any) -> None:
        if params:
            raise ConfigurationError(
                f"protocol {self.name!r} does not accept parameters {sorted(params)}"
            )

    @abstractmethod
    def allocate(
        self,
        n_balls: int,
        n_bins: int,
        seed: SeedLike = None,
        *,
        probe_stream: ProbeStream | None = None,
        record_trace: bool = False,
    ) -> AllocationResult:
        """Allocate ``n_balls`` balls into ``n_bins`` bins.

        Parameters
        ----------
        n_balls, n_bins:
            Problem size; ``n_bins`` must be positive, ``n_balls``
            non-negative.
        seed:
            Seed / generator for the run's randomness (ignored when
            ``probe_stream`` is given and the protocol needs no other
            randomness).
        probe_stream:
            Optional explicit probe stream; used by tests to replay a fixed
            choice vector.  Protocols that do not consume uniform probes
            (e.g. the parallel baselines) may reject it.
        record_trace:
            When true, record a per-stage :class:`~repro.runtime.trace.Trace`.
        """

    #: Whether :meth:`begin` is implemented (sequential per-ball placement).
    streaming: bool = False

    #: Whether :meth:`allocate_batch` runs trials as one 2-D computation.
    #: ``False`` means the base-class per-trial loop — protocols whose
    #: placement is inherently data-dependent across probes (the remembered
    #: -bin chain of the memory protocols, the weighted commit regimes) stay
    #: on it honestly rather than growing a second engine.
    batches: bool = False

    def allocate_batch(
        self,
        n_balls: int,
        n_bins: int,
        seeds: Sequence[SeedLike] | None = None,
        *,
        probe_streams: Sequence[ProbeStream] | None = None,
        record_trace: bool = False,
    ) -> list[AllocationResult]:
        """Run one independent trial per seed, all on the same problem size.

        Entry ``i`` of the returned list is **bit-identical** (same loads,
        same probe counts, same cost checkpoints) to
        ``allocate(n_balls, n_bins, seeds[i])`` — certified by the
        test-suite for every protocol.  Protocols with ``batches = True``
        override this with a trial-axis vectorised engine; this default
        simply loops ``allocate`` per trial, so every protocol exposes the
        same batch API regardless of whether batching pays off for it.

        Parameters
        ----------
        seeds:
            One seed per trial (typically the table from
            :func:`repro.runtime.rng.trial_seed_table`).
        probe_streams:
            Optional explicit per-trial probe streams (replay/testing);
            mutually exclusive with ``seeds``.
        record_trace:
            Forwarded to each trial's run.
        """
        self.validate_size(n_balls, n_bins)
        seeds, trials = _normalize_batch_args(seeds, probe_streams)
        return [
            self.allocate(
                n_balls,
                n_bins,
                None if seeds is None else seeds[i],
                probe_stream=None if probe_streams is None else probe_streams[i],
                record_trace=record_trace,
            )
            for i in range(trials)
        ]

    def begin(
        self,
        n_balls: int,
        n_bins: int,
        seed: SeedLike = None,
        *,
        probe_stream: ProbeStream | None = None,
        record_trace: bool = False,
    ) -> "ProtocolSession":
        """Start a streaming session placing ``n_balls`` balls incrementally.

        The session (:class:`~repro.core.session.ProtocolSession`) places
        balls in caller-chosen chunks and produces a result bit-identical to
        :meth:`allocate` for the same seed / probe stream, however the chunks
        are split.  Protocols whose placement is not sequential per ball
        (parallel rounds, rebalancing sweeps) raise
        :class:`~repro.errors.ConfigurationError`.
        """
        raise ConfigurationError(
            f"protocol {self.name!r} does not support streaming sessions; "
            "run it in one shot instead"
        )

    def describe(self) -> dict[str, Any]:
        """Return the protocol's name and parameters (for provenance)."""
        return {"name": self.name, **self.params()}

    def params(self) -> dict[str, Any]:
        """Parameters of this instance; subclasses with options override."""
        return {}

    @staticmethod
    def validate_size(n_balls: int, n_bins: int) -> None:
        """Shared validation of the problem size."""
        if n_bins <= 0:
            raise ConfigurationError(f"n_bins must be positive, got {n_bins}")
        if n_balls < 0:
            raise ConfigurationError(f"n_balls must be non-negative, got {n_balls}")

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        args = ", ".join(f"{k}={v!r}" for k, v in self.params().items())
        return f"{type(self).__name__}({args})"


_REGISTRY: dict[str, type[AllocationProtocol]] = {}


def register_protocol(
    cls: type[AllocationProtocol],
) -> type[AllocationProtocol]:
    """Class decorator adding ``cls`` to the protocol registry."""
    name = cls.name
    if not name or name == "abstract":
        raise ConfigurationError("registered protocols must define a unique name")
    if name in _REGISTRY and _REGISTRY[name] is not cls:
        raise ConfigurationError(f"protocol name {name!r} is already registered")
    _REGISTRY[name] = cls
    return cls


def get_protocol(name: str) -> type[AllocationProtocol]:
    """Return the protocol class registered under ``name``."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown protocol {name!r}; available: {sorted(_REGISTRY)}"
        ) from None


def make_protocol(name: str, **params: Any) -> AllocationProtocol:
    """Instantiate the protocol registered under ``name`` with ``params``.

    Parameter problems — unknown keyword, wrong arity — surface as
    :class:`~repro.errors.ConfigurationError` (instead of the bare
    ``TypeError`` a direct constructor call would raise), so spec validation
    can report them uniformly.
    """
    cls = get_protocol(name)
    try:
        return cls(**params)
    except TypeError as exc:
        raise ConfigurationError(
            f"invalid parameters for protocol {name!r}: {exc}"
        ) from exc


def available_protocols() -> Iterable[str]:
    """Names of all registered protocols, sorted."""
    return sorted(_REGISTRY)
