"""The ADAPTIVE protocol — the paper's main contribution (Figure 1).

Ball ``i`` samples bins uniformly at random until it finds one with load
strictly below ``i/n + 1`` and is placed there.  Because the threshold tracks
the number of balls placed so far, the protocol does not need to know ``m``
in advance, guarantees a maximum load of ``ceil(m/n) + 1`` deterministically,
uses ``O(m)`` probes in expectation (Theorem 3.1), and keeps the load vector
smooth at all times (Corollary 3.5: max−min gap ``O(log n)`` w.h.p.,
``E[Ψ] = O(n)``).

The implementation processes the run stage by stage (``n`` balls per stage,
during which the integer acceptance limit is constant, see
:mod:`repro.core.thresholds`) and fills each stage with the exact vectorised
window primitive of :mod:`repro.core.window`.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from repro.core.potentials import (
    DEFAULT_EPSILON,
    exponential_potential,
    quadratic_potential,
)
from repro.core.protocol import (
    AllocationProtocol,
    batch_streams,
    register_protocol,
)
from repro.core.result import AllocationResult
from repro.core.session import StagedWindowSession, run_staged_batch
from repro.core.thresholds import acceptance_limit, stage_windows
from repro.core.window import fill_window
from repro.errors import ConfigurationError
from repro.runtime.costs import CostModel
from repro.runtime.probes import ProbeStream, RandomProbeStream
from repro.runtime.rng import SeedLike
from repro.runtime.trace import StageRecord, Trace

__all__ = ["AdaptiveProtocol", "run_adaptive"]


@register_protocol
class AdaptiveProtocol(AllocationProtocol):
    """ADAPTIVE allocation (Figure 1 of the paper).

    Parameters
    ----------
    offset:
        Additive constant of the acceptance threshold ``i/n + offset``.  The
        paper uses ``offset = 1``.  ``offset = 0`` reproduces the
        coupon-collector variant dismissed in Section 2 (allocation time
        ``Θ(m log n)``) and is exposed for the ablation benchmark; larger
        offsets trade maximum load for fewer probes.
    block_size:
        Optional fixed probe block size for the vectorised engine (mainly for
        tests; the default heuristic is fine in practice).
    """

    name = "adaptive"
    streaming = True
    batches = True

    def __init__(self, offset: int = 1, block_size: int | None = None) -> None:
        if offset < 0:
            raise ConfigurationError(f"offset must be non-negative, got {offset}")
        if block_size is not None and block_size <= 0:
            raise ConfigurationError("block_size must be positive when given")
        self.offset = int(offset)
        self.block_size = block_size

    def params(self) -> dict[str, Any]:
        return {"offset": self.offset, "block_size": self.block_size}

    def begin(
        self,
        n_balls: int,
        n_bins: int,
        seed: SeedLike = None,
        *,
        probe_stream: ProbeStream | None = None,
        record_trace: bool = False,
    ) -> "_AdaptiveSession":
        self.validate_size(n_balls, n_bins)
        stream = probe_stream or RandomProbeStream(n_bins, seed)
        return _AdaptiveSession(
            self,
            n_balls,
            n_bins,
            stream,
            block_size=self.block_size,
            checkpoint_stages=True,
            record_trace=record_trace,
        )

    def allocate(
        self,
        n_balls: int,
        n_bins: int,
        seed: SeedLike = None,
        *,
        probe_stream: ProbeStream | None = None,
        record_trace: bool = False,
    ) -> AllocationResult:
        self.validate_size(n_balls, n_bins)
        stream = probe_stream or RandomProbeStream(n_bins, seed)
        if stream.n_bins != n_bins:
            raise ConfigurationError(
                "probe_stream.n_bins does not match the requested n_bins"
            )

        loads = np.zeros(n_bins, dtype=np.int64)
        costs = CostModel()
        trace = Trace() if record_trace else None
        total_probes = 0

        for window in stage_windows(n_balls, n_bins, self.offset):
            outcome = fill_window(
                loads,
                window.acceptance_limit,
                window.n_balls,
                stream,
                block_size=self.block_size,
            )
            total_probes += outcome.probes
            costs.add_probes(outcome.probes)
            costs.log_probe_checkpoint()
            if trace is not None:
                balls_so_far = window.last_ball
                trace.append(
                    StageRecord(
                        stage=window.stage,
                        balls_placed=window.n_balls,
                        probes=outcome.probes,
                        max_load=int(loads.max()),
                        min_load=int(loads.min()),
                        quadratic_potential=quadratic_potential(loads, balls_so_far),
                        exponential_potential=exponential_potential(
                            loads, balls_so_far, DEFAULT_EPSILON
                        ),
                    )
                )

        return AllocationResult(
            protocol=self.name,
            n_balls=n_balls,
            n_bins=n_bins,
            loads=loads,
            allocation_time=total_probes,
            costs=costs,
            trace=trace,
            params=self.params(),
        )

    def allocate_batch(
        self,
        n_balls: int,
        n_bins: int,
        seeds=None,
        *,
        probe_streams=None,
        record_trace: bool = False,
    ) -> list[AllocationResult]:
        if record_trace:
            # Traced runs are for analysis, not throughput; the per-trial
            # loop already records exact per-stage trajectories.
            return super().allocate_batch(
                n_balls,
                n_bins,
                seeds,
                probe_streams=probe_streams,
                record_trace=True,
            )
        self.validate_size(n_balls, n_bins)
        batch = batch_streams(n_bins, seeds, probe_streams)
        return run_staged_batch(
            self,
            n_balls,
            n_bins,
            batch,
            (
                (window.acceptance_limit, window.n_balls)
                for window in stage_windows(n_balls, n_bins, self.offset)
            ),
            block_size=self.block_size,
            checkpoint_stages=True,
        )


class _AdaptiveSession(StagedWindowSession):
    """Streaming ADAPTIVE: the acceptance limit tracks the ball index."""

    def _limit_for_ball(self, i: int) -> int:
        return acceptance_limit(i, self.n_bins, self.protocol.offset)


def run_adaptive(
    n_balls: int,
    n_bins: int,
    seed: SeedLike = None,
    *,
    offset: int = 1,
    record_trace: bool = False,
) -> AllocationResult:
    """Functional one-liner for :class:`AdaptiveProtocol`.

    Examples
    --------
    >>> result = run_adaptive(10_000, 1_000, seed=0)
    >>> result.max_load <= 10 + 1
    True
    """
    return AdaptiveProtocol(offset=offset).allocate(
        n_balls, n_bins, seed, record_trace=record_trace
    )
