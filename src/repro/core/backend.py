"""Pluggable kernel backends: one algorithmic contract, swappable kernels.

Every chunked engine in the package dispatches on a small set of primitive
kernels — the occurrence-rank / conflict-free-row folds, the window-filling
exact-cutoff pass, the chunk commit, the weighted verify/fixpoint pass, the
(d,k)-memory hand-off and the rebalancing move sweep.  This module separates
those *implementations* from the *algorithms* that call them, the same
algorithm/execution-substrate split that lets one protocol contract run on
different execution models: a :class:`KernelBackend` implements the kernels,
a registry names the implementations, and a context variable selects which
one the engines see.

Three backends ship:

* ``"numpy"`` (default) — the chunked vectorised kernels the engines have
  always used, unchanged; the only backend supporting the trial-axis batched
  engines and the provisional (1,1)-memory fixpoint.
* ``"scalar"`` — the literal per-ball loops, single-homed here.  This is the
  one copy of the scalar rules that used to be duplicated between engines
  and the d>1 / k>=2 fallbacks (the per-ball *reference oracles* in
  :mod:`repro.baselines.reference` stay deliberately independent).
* ``"numba"`` — optional ``@njit`` kernels targeting exactly the regimes the
  NumPy engines deliberately leave scalar ((d,k)-memory with ``d > 1`` or
  ``k >= 2``, and the weighted-memory commit).  Degrades gracefully: when
  numba is not installed the backend stays registered but unavailable, and
  selecting it raises :class:`~repro.errors.ConfigurationError` with the
  install hint.

Every backend produces **bit-identical** results on every kernel — same
loads, same assignments, same probe consumption — which the cross-backend
suite (``tests/test_backends.py``) certifies under shared
:class:`~repro.runtime.probes.FixedProbeStream` replay.  Backends are an
execution strategy, never a semantic choice.

Selection is ambient: drivers (:class:`repro.api.Simulation`, the
:class:`repro.scheduler.dispatcher.Dispatcher`, :func:`repro.experiments.runner.run_trials`,
the CLI) resolve a spec's ``backend=`` field once and wrap their engine
calls in :func:`use_backend`; engine entry points read
:func:`active_backend` so protocol logic never threads a backend argument.
"""

from __future__ import annotations

import contextlib
import contextvars
from typing import TYPE_CHECKING, Any, Iterator

import numpy as np

from repro.errors import ConfigurationError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.runtime.probes import ProbeStream

__all__ = [
    "KernelBackend",
    "NumpyBackend",
    "ScalarBackend",
    "NumbaBackend",
    "DEFAULT_BACKEND",
    "register_backend",
    "get_backend",
    "resolve_backend",
    "active_backend",
    "use_backend",
    "backend_names",
    "available_backends",
    "describe_backends",
    "validate_backend_name",
    "memory_hand_off",
    "chunked_memory_hand_off",
    "weighted_memory_hand_off",
]

#: Balls per bulk fresh-choice draw on the scalar memory paths; the hand-off
#: is sequential either way, so the chunk only bounds each ``take_matrix``
#: call (results are independent of it).
_FRESH_CHUNK = 4096


# --------------------------------------------------------------------- #
# The literal scalar memory rules (single-homed: every execution strategy
# that needs the sequential (d,k)-memory rule calls these)
# --------------------------------------------------------------------- #
def memory_hand_off(
    counts,
    fresh_rows: list[list[int]],
    memory: list[int],
    k: int,
    assignments: list[int] | None = None,
) -> list[int]:
    """Run the sequential (d,k)-memory hand-off over one chunk of balls.

    ``counts`` (per-bin loads, mutated in place — a plain list or a NumPy
    vector, accessed element-wise) and the returned memory are the
    protocol's exact sequential state.  Candidates are the fresh row
    followed by the remembered bins; the first least-loaded candidate wins,
    and the ``k`` least loaded *distinct* candidate bins (stable order:
    candidate order breaks load ties) are remembered for the next ball.
    This is the spill rule of
    :func:`repro.baselines.memory_engine.chunked_memory_commit` and the
    scalar small-burst path of the dispatcher's ``memory`` policy, so every
    execution strategy shares one implementation of the literal rule.
    """
    for row in fresh_rows:
        candidates = row + memory
        best = candidates[0]
        best_load = counts[best]
        for bin_index in candidates[1:]:
            load = counts[bin_index]
            if load < best_load:
                best, best_load = bin_index, load
        counts[best] = best_load + 1
        if assignments is not None:
            assignments.append(best)
        if k:
            seen: set[int] = set()
            unique = [
                b for b in candidates if not (b in seen or seen.add(b))
            ]
            unique.sort(key=counts.__getitem__)  # stable: ties keep cand order
            memory = unique[:k]
    return memory


def chunked_memory_hand_off(
    stream: "ProbeStream",
    counts: list[int],
    memory: list[int],
    n_balls: int,
    d: int,
    k: int,
    assignments: list[int] | None = None,
) -> list[int]:
    """Drive :func:`memory_hand_off` over ``n_balls`` chunked fresh draws.

    Each chunk's ``d`` fresh choices come from one bulk
    :meth:`~repro.runtime.probes.ProbeStream.take_matrix` call (consumption
    order identical to a per-ball loop).  This is the scalar fallback of
    :func:`repro.baselines.memory_engine.chunked_memory_commit` (``k >= 2``
    and untabulatable chunks) and the speedup baseline of
    ``bench_baseline_throughput.py``.  Returns the new remembered set;
    ``counts`` (and ``assignments``) are mutated in place.
    """
    placed = 0
    while placed < n_balls:
        count = min(_FRESH_CHUNK, n_balls - placed)
        fresh = stream.take_matrix(count, d).tolist()
        memory = memory_hand_off(counts, fresh, memory, k, assignments=assignments)
        placed += count
    return memory


def weighted_memory_hand_off(
    loads,
    fresh_rows: list[list[int]],
    memory: list[int],
    k: int,
    weights: list[float],
    assignments: list[int] | None = None,
) -> list[int]:
    """The (d,k)-memory rule on weighted balls: float loads, weight increments.

    Identical structure to :func:`memory_hand_off` — first least
    weighted-loaded candidate wins, the ``k`` least loaded distinct
    candidate bins are remembered (stable sort, candidate order breaks
    ties) — except each placement adds the ball's weight instead of 1.
    ``loads`` is a plain list of floats (or any element-wise container);
    mutated in place.
    """
    for row, weight in zip(fresh_rows, weights):
        candidates = row + memory
        best = candidates[0]
        best_load = loads[best]
        for bin_index in candidates[1:]:
            load = loads[bin_index]
            if load < best_load:
                best, best_load = bin_index, load
        loads[best] = best_load + weight
        if assignments is not None:
            assignments.append(best)
        if k:
            seen: set[int] = set()
            unique = [
                b for b in candidates if not (b in seen or seen.add(b))
            ]
            unique.sort(key=loads.__getitem__)
            memory = unique[:k]
    return memory


# --------------------------------------------------------------------- #
# Scalar kernels for the engine primitives (the "scalar" backend)
# --------------------------------------------------------------------- #
def _occurrence_ranks_scalar(values: np.ndarray) -> np.ndarray:
    """Per-element count of earlier equal elements, one dict pass."""
    out = np.empty(values.size, dtype=np.int64)
    seen: dict[int, int] = {}
    for i, v in enumerate(values.tolist()):
        rank = seen.get(v, 0)
        out[i] = rank
        seen[v] = rank + 1
    return out


def _conflict_free_rows_scalar(
    candidates: np.ndarray, n_bins: int | None = None
) -> np.ndarray:
    """Row-by-row first-holder scan; same contract as the scatter version."""
    rows = candidates.tolist()
    first: dict[int, int] = {}
    for i, row in enumerate(rows):
        for v in row:
            if v not in first:
                first[v] = i
    out = np.empty(len(rows), dtype=bool)
    for i, row in enumerate(rows):
        out[i] = all(first[v] >= i for v in row)
    return out


def _run_window_scalar(
    loads: np.ndarray,
    acceptance_limit: int,
    n_balls: int,
    stream: "ProbeStream",
    block_size: int | None,
    collect: bool,
) -> tuple[int, list[np.ndarray]]:
    """The ball-by-ball window rule: probe until the bin is under the limit.

    Consumes the exact probe sequence of the sequential process (one
    :meth:`~repro.runtime.probes.ProbeStream.take_one` per probe, which the
    give-back contract makes indistinguishable from block draws), so loads
    and probe counts match the vectorised window bit for bit.
    ``block_size`` is accepted for interface parity; it cannot affect a
    per-probe loop.
    """
    counts = loads.tolist()
    limit = int(acceptance_limit)
    accepted: list[int] = []
    placed = 0
    probes = 0
    while placed < n_balls:
        j = stream.take_one()
        probes += 1
        if counts[j] <= limit:
            counts[j] += 1
            placed += 1
            if collect:
                accepted.append(j)
    loads[:] = counts
    chunks = [np.asarray(accepted, dtype=np.int64)] if accepted else []
    return probes, chunks


def _commit_chunk_scalar(
    loads: np.ndarray,
    rows: np.ndarray,
    priorities: np.ndarray | None = None,
    assignments: np.ndarray | None = None,
    base: int = 0,
    weights: np.ndarray | None = None,
) -> None:
    """The per-ball argmin commit: first least-loaded candidate wins.

    With ``priorities``, the smallest priority among the least-loaded
    positions wins (first position on a priority tie) — the same selection
    the masked-argmin pass of the vectorised commit makes.  Weighted commits
    add each ball's weight with one scalar ``+`` in ball order, the same
    IEEE operation sequence as the engine's element-wise ``np.add.at``.
    """
    counts = loads.tolist()
    row_list = rows.tolist()
    pri_list = priorities.tolist() if priorities is not None else None
    weight_list = weights.tolist() if weights is not None else None
    for i, row in enumerate(row_list):
        best = row[0]
        best_load = counts[best]
        if pri_list is None:
            for cand in row[1:]:
                load = counts[cand]
                if load < best_load:
                    best, best_load = cand, load
        else:
            prow = pri_list[i]
            best_pri = prow[0]
            for pos in range(1, len(row)):
                cand = row[pos]
                load = counts[cand]
                if load < best_load or (load == best_load and prow[pos] < best_pri):
                    best, best_load, best_pri = cand, load, prow[pos]
        counts[best] = best_load + (1 if weight_list is None else weight_list[i])
        if assignments is not None:
            assignments[base + i] = best
    loads[:] = counts


def _move_sweep_scalar(
    loads: np.ndarray,
    choices: np.ndarray,
    placement: np.ndarray,
    chunk_size: int | None = None,
) -> int:
    """The sequential CRS-style move rule, ball by ball in ball order."""
    counts = loads.tolist()
    placed = placement.tolist()
    moved = 0
    for i, row in enumerate(choices.tolist()):
        best = row[0]
        best_load = counts[best]
        for cand in row[1:]:
            load = counts[cand]
            if load < best_load:
                best, best_load = cand, load
        current = placed[i]
        if best_load + 2 <= counts[current]:
            counts[current] -= 1
            counts[best] += 1
            placed[i] = best
            moved += 1
    loads[:] = counts
    placement[:] = placed
    return moved


def _simulate_weighted_block_scalar(
    block: np.ndarray,
    bin_loads: np.ndarray,
    weights: np.ndarray,
    thresholds: np.ndarray,
    ball_base: int,
    last_ball: int,
) -> tuple[np.ndarray, int]:
    """Exact sequential replay of one weighted probe block.

    Walks the probes in order, maintaining each touched bin's running load
    in a dict seeded from the snapshot ``bin_loads``; every outcome is the
    sequential process's own decision, so the whole block is verified
    (``verified_until == size``) and the caller's margin machinery never
    engages.  Probes past the chunk's last acceptance are left unmarked —
    the caller's remaining-balls cutoff gives them back untouched.
    """
    size = block.size
    accepted = np.zeros(size, dtype=bool)
    bins = block.tolist()
    start_loads = bin_loads.tolist()
    current: dict[int, float] = {}
    ball = ball_base
    for p in range(size):
        if ball > last_ball:
            break
        j = bins[p]
        load = current.get(j)
        if load is None:
            load = start_loads[p]
        if load < thresholds[ball]:
            accepted[p] = True
            current[j] = load + weights[ball]
            ball += 1
    return accepted, size


# --------------------------------------------------------------------- #
# The backend interface
# --------------------------------------------------------------------- #
class KernelBackend:
    """One implementation of the primitive kernels the engines dispatch on.

    Subclasses implement the kernel methods; the base class carries the
    single-homed scalar memory rules (shared verbatim by the numpy and
    scalar backends — the NumPy engines deliberately keep those regimes
    scalar, see the ROADMAP standing constraint) and the capability flags
    the drivers consult.

    Every kernel must be **bit-identical** to the reference semantics —
    same loads, same assignments, same probe consumption.  Backends are an
    execution strategy, never a semantic choice.
    """

    #: Registry name; subclasses override.
    name: str = "abstract"

    #: Whether the trial-axis batched engines (``fill_window_batch``,
    #: ``batched_argmin_commit``) may run under this backend.  Drivers fall
    #: back to the per-trial loop when false (results are identical either
    #: way; batching is itself just an execution strategy).
    trial_batching: bool = False

    #: Whether the provisional (1,1)-memory fixpoint engine may run under
    #: this backend; when false the d=1,k=1 configuration routes through
    #: :meth:`memory_fallback` instead.
    provisional_memory: bool = False

    def available(self) -> bool:
        """Whether this backend can run in the current environment."""
        return True

    def unavailable_reason(self) -> str | None:
        """Why :meth:`available` is false (``None`` when available)."""
        return None

    # -- engine kernels (subclasses implement) -------------------------- #
    def occurrence_ranks(self, values: np.ndarray) -> np.ndarray:
        """Per-element count of earlier equal elements (validated 1-D input)."""
        raise NotImplementedError

    def conflict_free_rows(
        self, candidates: np.ndarray, n_bins: int | None = None
    ) -> np.ndarray:
        """Rows of a candidate matrix no earlier row can disturb."""
        raise NotImplementedError

    def run_window(
        self,
        loads: np.ndarray,
        acceptance_limit: int,
        n_balls: int,
        stream: "ProbeStream",
        block_size: int | None,
        collect: bool,
    ) -> tuple[int, list[np.ndarray]]:
        """Fill one constant-limit window (validated, capacity-checked input)."""
        raise NotImplementedError

    def commit_chunk(
        self,
        loads: np.ndarray,
        rows: np.ndarray,
        priorities: np.ndarray | None = None,
        assignments: np.ndarray | None = None,
        base: int = 0,
        weights: np.ndarray | None = None,
    ) -> None:
        """Commit one chunk of d-choice balls in sequential ball order."""
        raise NotImplementedError

    def move_sweep(
        self,
        loads: np.ndarray,
        choices: np.ndarray,
        placement: np.ndarray,
        chunk_size: int | None = None,
    ) -> int:
        """One self-balancing sweep over all balls; returns the move count."""
        raise NotImplementedError

    def simulate_weighted_block(
        self,
        block: np.ndarray,
        bin_loads: np.ndarray,
        weights: np.ndarray,
        thresholds: np.ndarray,
        ball_base: int,
        last_ball: int,
    ) -> tuple[np.ndarray, int]:
        """Resolve one weighted probe block; returns (accepted, verified_until)."""
        raise NotImplementedError

    # -- the scalar memory rules (shared defaults) ----------------------- #
    def memory_hand_off(
        self,
        counts,
        fresh_rows: list[list[int]],
        memory: list[int],
        k: int,
        assignments: list[int] | None = None,
    ) -> list[int]:
        """One chunk of the sequential (d,k)-memory rule (see module fn)."""
        return memory_hand_off(counts, fresh_rows, memory, k, assignments=assignments)

    def weighted_memory_hand_off(
        self,
        loads,
        fresh_rows: list[list[int]],
        memory: list[int],
        k: int,
        weights: list[float],
        assignments: list[int] | None = None,
    ) -> list[int]:
        """One chunk of the weighted (d,k)-memory rule (see module fn)."""
        return weighted_memory_hand_off(
            loads, fresh_rows, memory, k, weights, assignments=assignments
        )

    def memory_fallback(
        self,
        stream: "ProbeStream",
        loads: np.ndarray,
        memory: list[int],
        n_balls: int,
        d: int,
        k: int,
        assignments: np.ndarray | None = None,
        chunk_size: int | None = None,
    ) -> list[int]:
        """Place ``n_balls`` (d,k)-memory balls with the sequential rule.

        The fallback regime of
        :func:`repro.baselines.memory_engine.chunked_memory_commit` (``d > 1``
        or ``k >= 2``, where every NumPy decomposition measured slower than
        the loop).  ``loads`` is int64, updated in place; returns the new
        remembered set.  ``chunk_size`` only bounds the bulk fresh draws and
        cannot affect results.
        """
        counts = loads.tolist()
        out: list[int] | None = [] if assignments is not None else None
        memory = chunked_memory_hand_off(
            stream, counts, memory, n_balls, d, k, assignments=out
        )
        loads[:] = counts
        if assignments is not None:
            assignments[:n_balls] = out
        return memory

    def weighted_memory_fallback(
        self,
        stream: "ProbeStream",
        weighted_loads: np.ndarray,
        memory: list[int],
        weights: np.ndarray,
        d: int,
        k: int,
        assignments: np.ndarray | None = None,
        chunk_size: int | None = None,
    ) -> list[int]:
        """Place all ``weights`` under the weighted (d,k)-memory rule.

        The commit path of
        :func:`repro.baselines.memory_engine.chunked_weighted_memory_commit`:
        float loads make the rule's sequential dependency continuous-valued,
        so the base implementation runs the chunk-drawn scalar rule over
        plain Python floats.  ``weighted_loads`` (float64) is updated in
        place; returns the new remembered set.
        """
        n_balls = int(weights.size)
        chunk = int(chunk_size) if chunk_size else _FRESH_CHUNK
        loads_list = weighted_loads.tolist()
        weight_list = weights.tolist()
        out: list[int] | None = [] if assignments is not None else None
        placed = 0
        while placed < n_balls:
            count = min(chunk, n_balls - placed)
            fresh = stream.take_matrix(count, d).tolist()
            memory = weighted_memory_hand_off(
                loads_list,
                fresh,
                memory,
                k,
                weight_list[placed : placed + count],
                assignments=out,
            )
            placed += count
        weighted_loads[:] = loads_list
        if assignments is not None:
            assignments[:n_balls] = out
        return memory

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<{type(self).__name__} {self.name!r}>"


class NumpyBackend(KernelBackend):
    """The chunked vectorised kernels — today's engines, moved not rewritten.

    The kernel bodies live next to their engines (``_*_numpy`` functions in
    :mod:`repro.core.window`, :mod:`repro.baselines.engine`,
    :mod:`repro.core.weighted_engine`); this class binds them behind the
    backend interface.  The imports are function-local because those engine
    modules import this one for dispatch.
    """

    name = "numpy"
    trial_batching = True
    provisional_memory = True

    def occurrence_ranks(self, values):
        from repro.core.window import _occurrence_ranks_numpy

        return _occurrence_ranks_numpy(values)

    def conflict_free_rows(self, candidates, n_bins=None):
        from repro.core.window import _conflict_free_rows_numpy

        return _conflict_free_rows_numpy(candidates, n_bins)

    def run_window(self, loads, acceptance_limit, n_balls, stream, block_size, collect):
        from repro.core.window import _run_window_numpy

        return _run_window_numpy(
            loads, acceptance_limit, n_balls, stream, block_size, collect
        )

    def commit_chunk(
        self, loads, rows, priorities=None, assignments=None, base=0, weights=None
    ):
        from repro.baselines.engine import _commit_chunk_numpy

        _commit_chunk_numpy(
            loads,
            rows,
            priorities=priorities,
            assignments=assignments,
            base=base,
            weights=weights,
        )

    def move_sweep(self, loads, choices, placement, chunk_size=None):
        from repro.baselines.engine import _move_sweep_numpy

        return _move_sweep_numpy(loads, choices, placement, chunk_size=chunk_size)

    def simulate_weighted_block(
        self, block, bin_loads, weights, thresholds, ball_base, last_ball
    ):
        from repro.core.weighted_engine import _simulate_block

        return _simulate_block(
            block, bin_loads, weights, thresholds, ball_base, last_ball
        )


class ScalarBackend(KernelBackend):
    """The literal per-ball loops, one shared home for every scalar rule.

    Useful as a cross-check oracle for the vectorised kernels (independent
    of the per-ball references in :mod:`repro.baselines.reference`, which
    implement whole protocols rather than kernels) and as the measured
    baseline the numba backend must beat.
    """

    name = "scalar"

    def occurrence_ranks(self, values):
        return _occurrence_ranks_scalar(values)

    def conflict_free_rows(self, candidates, n_bins=None):
        return _conflict_free_rows_scalar(candidates, n_bins)

    def run_window(self, loads, acceptance_limit, n_balls, stream, block_size, collect):
        return _run_window_scalar(
            loads, acceptance_limit, n_balls, stream, block_size, collect
        )

    def commit_chunk(
        self, loads, rows, priorities=None, assignments=None, base=0, weights=None
    ):
        _commit_chunk_scalar(
            loads,
            rows,
            priorities=priorities,
            assignments=assignments,
            base=base,
            weights=weights,
        )

    def move_sweep(self, loads, choices, placement, chunk_size=None):
        return _move_sweep_scalar(loads, choices, placement, chunk_size=chunk_size)

    def simulate_weighted_block(
        self, block, bin_loads, weights, thresholds, ball_base, last_ball
    ):
        return _simulate_weighted_block_scalar(
            block, bin_loads, weights, thresholds, ball_base, last_ball
        )


class NumbaBackend(NumpyBackend):
    """NumPy kernels everywhere, ``@njit`` loops on the scalar regimes.

    The only regimes the NumPy engines leave scalar — the (d,k)-memory
    hand-off for ``d > 1`` / ``k >= 2`` and the weighted-memory commit —
    are exactly where a JIT-compiled per-ball loop wins (ROADMAP item 4
    left this as the one sanctioned route to beat them).  Everything else
    inherits the vectorised kernels unchanged.

    The jitted kernels live in :mod:`repro.core._numba_kernels`; importing
    that module is what requires numba, so this backend stays registered
    (and honestly reports why it cannot run) when the ``accel`` extra is
    not installed.
    """

    name = "numba"

    _kernels_module: Any = None
    _import_error: str | None = None

    @classmethod
    def _kernels(cls) -> Any:
        if cls._kernels_module is None and cls._import_error is None:
            try:
                from repro.core import _numba_kernels

                cls._kernels_module = _numba_kernels
            except ImportError as exc:
                cls._import_error = str(exc)
        return cls._kernels_module

    def available(self) -> bool:
        return self._kernels() is not None

    def unavailable_reason(self) -> str | None:
        if self.available():
            return None
        return (
            "backend 'numba' requires the optional numba dependency "
            f"(import failed: {self._import_error}); install it with "
            "`pip install 'repro-balls-into-bins[accel]'` or `pip install numba`"
        )

    def memory_fallback(
        self,
        stream,
        loads,
        memory,
        n_balls,
        d,
        k,
        assignments=None,
        chunk_size=None,
    ):
        kernels = self._kernels()
        mem_len = len(memory)
        buf = np.empty(max(k, mem_len, 1), dtype=np.int64)
        buf[:mem_len] = memory
        record = assignments is not None
        out = assignments if record else np.empty(1, dtype=np.int64)
        placed = 0
        while placed < n_balls:
            count = min(_FRESH_CHUNK, n_balls - placed)
            fresh = stream.take_matrix(count, d)
            mem_len = kernels.memory_chunk(
                loads, fresh, buf, mem_len, k, out, placed, record
            )
            placed += count
        return [int(b) for b in buf[:mem_len]]

    def weighted_memory_fallback(
        self,
        stream,
        weighted_loads,
        memory,
        weights,
        d,
        k,
        assignments=None,
        chunk_size=None,
    ):
        kernels = self._kernels()
        n_balls = int(weights.size)
        chunk = int(chunk_size) if chunk_size else _FRESH_CHUNK
        mem_len = len(memory)
        buf = np.empty(max(k, mem_len, 1), dtype=np.int64)
        buf[:mem_len] = memory
        record = assignments is not None
        out = assignments if record else np.empty(1, dtype=np.int64)
        weights = np.ascontiguousarray(weights, dtype=np.float64)
        placed = 0
        while placed < n_balls:
            count = min(chunk, n_balls - placed)
            fresh = stream.take_matrix(count, d)
            mem_len = kernels.weighted_memory_chunk(
                weighted_loads, fresh, buf, mem_len, k,
                weights[placed : placed + count], out, placed, record,
            )
            placed += count
        return [int(b) for b in buf[:mem_len]]


# --------------------------------------------------------------------- #
# Registry and ambient selection
# --------------------------------------------------------------------- #
_REGISTRY: dict[str, KernelBackend] = {}

DEFAULT_BACKEND = "numpy"

_ACTIVE: contextvars.ContextVar[KernelBackend | None] = contextvars.ContextVar(
    "active_kernel_backend", default=None
)


def register_backend(backend: KernelBackend) -> KernelBackend:
    """Add a backend instance to the registry under its ``name``."""
    name = backend.name
    if not name or name == "abstract":
        raise ConfigurationError("registered backends must define a unique name")
    if name in _REGISTRY and type(_REGISTRY[name]) is not type(backend):
        raise ConfigurationError(f"backend name {name!r} is already registered")
    _REGISTRY[name] = backend
    return backend


def backend_names() -> list[str]:
    """Names of all registered backends (available or not), sorted."""
    return sorted(_REGISTRY)


def available_backends() -> list[str]:
    """Names of the registered backends that can run here, sorted."""
    return [name for name in sorted(_REGISTRY) if _REGISTRY[name].available()]


def describe_backends() -> list[dict[str, Any]]:
    """One record per registered backend: name, availability, note."""
    records = []
    for name in sorted(_REGISTRY):
        backend = _REGISTRY[name]
        ok = backend.available()
        records.append(
            {
                "name": name,
                "available": ok,
                "note": "" if ok else (backend.unavailable_reason() or ""),
                "default": name == DEFAULT_BACKEND,
            }
        )
    return records


def validate_backend_name(name: Any) -> None:
    """Spec-level validation: the name must be registered (``None`` = default).

    Availability is deliberately *not* required here — a spec naming the
    numba backend must round-trip on a machine without numba; resolving the
    backend to actually run (:func:`get_backend`) is where unavailability
    errors with the install hint.
    """
    if name is None:
        return
    if not isinstance(name, str):
        raise ConfigurationError(f"backend must be a string, got {name!r}")
    if name not in _REGISTRY:
        raise ConfigurationError(
            f"unknown backend {name!r}; available: {backend_names()}"
        )


def get_backend(name: str) -> KernelBackend:
    """Return the backend registered under ``name``, checking availability."""
    validate_backend_name(name)
    backend = _REGISTRY[name]
    if not backend.available():
        raise ConfigurationError(backend.unavailable_reason())
    return backend


def resolve_backend(backend: "str | KernelBackend | None") -> KernelBackend:
    """Coerce a spec field / kwarg to a backend instance (``None`` = default)."""
    if backend is None:
        return _REGISTRY[DEFAULT_BACKEND]
    if isinstance(backend, KernelBackend):
        return backend
    return get_backend(backend)


def active_backend() -> KernelBackend:
    """The backend the engines currently dispatch to (default ``"numpy"``)."""
    backend = _ACTIVE.get()
    return _REGISTRY[DEFAULT_BACKEND] if backend is None else backend


@contextlib.contextmanager
def use_backend(backend: "str | KernelBackend | None") -> Iterator[KernelBackend]:
    """Select the ambient kernel backend for the duration of the block.

    Context-variable based, so concurrent sessions (threads, async tasks)
    each see their own selection.  ``None`` selects the default.
    """
    resolved = resolve_backend(backend)
    token = _ACTIVE.set(resolved)
    try:
        yield resolved
    finally:
        _ACTIVE.reset(token)


register_backend(NumpyBackend())
register_backend(ScalarBackend())
register_backend(NumbaBackend())
