"""Core of the reproduction: the paper's ADAPTIVE and THRESHOLD protocols.

This subpackage contains the primary contribution of the paper and the
machinery shared by every allocation scheme:

* :mod:`repro.core.adaptive` / :mod:`repro.core.threshold` — the two
  protocols analysed in the paper,
* :mod:`repro.core.window` — the exact vectorised constant-threshold window
  simulation both protocols are built on,
* :mod:`repro.core.reference` — literal ball-by-ball implementations used to
  validate the vectorised engines,
* :mod:`repro.core.potentials` — the smoothness potentials ``Ψ`` and ``Φ``,
* :mod:`repro.core.thresholds` — exact integer acceptance-limit arithmetic,
* :mod:`repro.core.protocol` / :mod:`repro.core.result` — the protocol
  interface, registry and result records,
* :mod:`repro.core.backend` — pluggable kernel backends (numpy / scalar /
  numba) behind the engines' primitive kernels.
"""

from repro.core.adaptive import AdaptiveProtocol, run_adaptive
from repro.core.backend import (
    DEFAULT_BACKEND,
    KernelBackend,
    active_backend,
    available_backends,
    backend_names,
    describe_backends,
    get_backend,
    register_backend,
    resolve_backend,
    use_backend,
)
from repro.core.potentials import (
    DEFAULT_EPSILON,
    exponential_potential,
    holes,
    load_gap,
    log_exponential_potential,
    quadratic_potential,
    smoothness_summary,
    underloaded_bins,
)
from repro.core.protocol import (
    AllocationProtocol,
    available_protocols,
    get_protocol,
    make_protocol,
    register_protocol,
)
from repro.core.reference import reference_adaptive, reference_threshold
from repro.core.result import AllocationResult, RunResult
from repro.core.threshold import ThresholdProtocol, run_threshold
from repro.core.weighted import (
    WeightedAdaptiveProtocol,
    WeightedAllocationResult,
    WeightedGreedyProtocol,
    WeightedRunResult,
    WeightedThresholdProtocol,
    reference_weighted_adaptive,
    reference_weighted_greedy,
    reference_weighted_threshold,
    run_weighted_adaptive,
    run_weighted_greedy,
    run_weighted_threshold,
    weighted_gap_bound,
)
from repro.core.weighted_engine import (
    adaptive_weighted_thresholds,
    chunked_weighted_assign,
    default_weighted_chunk_size,
    fixed_weighted_threshold,
)
from repro.core.thresholds import (
    StageWindow,
    acceptance_limit,
    ceil_div,
    max_final_load,
    stage_of_ball,
    stage_windows,
)
from repro.core.window import WindowOutcome, fill_window, occurrence_ranks

__all__ = [
    "AdaptiveProtocol",
    "run_adaptive",
    "ThresholdProtocol",
    "run_threshold",
    "AllocationProtocol",
    "AllocationResult",
    "RunResult",
    "available_protocols",
    "get_protocol",
    "make_protocol",
    "register_protocol",
    "reference_adaptive",
    "reference_threshold",
    "DEFAULT_EPSILON",
    "exponential_potential",
    "holes",
    "load_gap",
    "log_exponential_potential",
    "quadratic_potential",
    "smoothness_summary",
    "underloaded_bins",
    "StageWindow",
    "acceptance_limit",
    "ceil_div",
    "max_final_load",
    "stage_of_ball",
    "stage_windows",
    "WindowOutcome",
    "fill_window",
    "occurrence_ranks",
    "WeightedAllocationResult",
    "WeightedRunResult",
    "WeightedAdaptiveProtocol",
    "WeightedThresholdProtocol",
    "WeightedGreedyProtocol",
    "run_weighted_adaptive",
    "run_weighted_threshold",
    "run_weighted_greedy",
    "reference_weighted_adaptive",
    "reference_weighted_threshold",
    "reference_weighted_greedy",
    "weighted_gap_bound",
    "adaptive_weighted_thresholds",
    "chunked_weighted_assign",
    "default_weighted_chunk_size",
    "fixed_weighted_threshold",
    "DEFAULT_BACKEND",
    "KernelBackend",
    "active_backend",
    "available_backends",
    "backend_names",
    "describe_backends",
    "get_backend",
    "register_backend",
    "resolve_backend",
    "use_backend",
]
