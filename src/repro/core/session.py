"""Streaming protocol sessions: place balls in caller-chosen chunks.

A :class:`ProtocolSession` is the incremental counterpart of
:meth:`~repro.core.protocol.AllocationProtocol.allocate`: the caller places
balls in chunks of any size (:meth:`ProtocolSession.place`), may inspect the
evolving load vector and probe consumption between chunks, and finally asks
for the same unified :class:`~repro.core.result.RunResult` a one-shot run
would have produced.  The contract — certified by the test-suite for every
streaming protocol — is that **any split of the balls into ``place`` calls
yields a bit-identical result**: same loads, same probe-stream consumption,
same cost checkpoints, same trace.  This works because the sessions are
thin drivers over the chunked exact engines (the window primitive, the
conflict-free commit engine, the weighted provisional engine), whose
chunk-partitioning invariance is already certified.

Sessions are created through
:meth:`~repro.core.protocol.AllocationProtocol.begin`; protocols whose
placement order is not sequential per ball (the parallel round protocols,
rebalancing's move sweeps) do not support sessions and say so with a
:class:`~repro.errors.ConfigurationError`.

:class:`StagedWindowSession` is the shared machinery of the two
constant-limit-window protocols (ADAPTIVE and THRESHOLD): it walks the
stage/chunk boundaries of the one-shot implementations so that probe
checkpoints and per-stage traces land on exactly the same balls.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np

from repro.core.potentials import (
    DEFAULT_EPSILON,
    exponential_potential,
    quadratic_potential,
)
from repro.core.result import RunResult
from repro.core.window import fill_window, fill_window_batch
from repro.errors import ConfigurationError, ProtocolError
from repro.runtime.costs import CostModel
from repro.runtime.probes import BatchedProbeStream, ProbeStream
from repro.runtime.trace import StageRecord, Trace

__all__ = ["ProtocolSession", "StagedWindowSession", "run_staged_batch"]


def run_staged_batch(
    protocol,
    n_balls: int,
    n_bins: int,
    batch: BatchedProbeStream,
    windows,
    *,
    block_size: int | None,
    checkpoint_stages: bool,
) -> list[RunResult]:
    """Run every trial of a constant-limit-window protocol as one 2-D batch.

    Shared by the batched ADAPTIVE and THRESHOLD paths: ``windows`` yields
    ``(acceptance_limit, count)`` pairs — the same stage decomposition as
    the one-shot single-trial run, which depends only on the ball index, so
    all trials share it — and each window is filled for all trials at once
    with :func:`~repro.core.window.fill_window_batch`.  Per-trial cost models
    are rebuilt exactly as the one-shot implementations build them: one
    ``add_probes`` + checkpoint per stage when ``checkpoint_stages``
    (ADAPTIVE), one flat ``add_probes`` with no checkpoints otherwise
    (non-traced THRESHOLD).  Trial ``t`` of the returned list is
    bit-identical to the single-trial run on ``batch.children[t]``.
    """
    n_trials = batch.trials
    loads = np.zeros((n_trials, n_bins), dtype=np.int64)
    window_probes: list[np.ndarray] = []
    for limit, count in windows:
        window_probes.append(
            fill_window_batch(loads, limit, count, batch, block_size=block_size)
        )
    results = []
    for t in range(n_trials):
        costs = CostModel()
        if checkpoint_stages:
            for probes in window_probes:
                costs.add_probes(int(probes[t]))
                costs.log_probe_checkpoint()
        else:
            total = sum(int(probes[t]) for probes in window_probes)
            if total:
                costs.add_probes(total)
        results.append(
            RunResult(
                protocol=protocol.name,
                n_balls=n_balls,
                n_bins=n_bins,
                loads=loads[t].copy(),
                allocation_time=costs.probes,
                costs=costs,
                trace=None,
                params=protocol.params(),
            )
        )
    return results


class ProtocolSession(ABC):
    """Incremental run of one allocation protocol (see the module docstring).

    Attributes
    ----------
    n_balls, n_bins:
        Problem size fixed at session start (``n_balls`` is the total the
        session will place — THRESHOLD-style rules need it up front, and it
        makes any-split equivalence with the one-shot run well defined).
    placed:
        Number of balls placed so far.
    stream:
        The probe stream the session consumes; ``stream.consumed`` tracks
        exactly the sequential process.
    """

    def __init__(
        self, protocol, n_balls: int, n_bins: int, stream: ProbeStream
    ) -> None:
        if n_balls < 0:
            raise ConfigurationError(f"n_balls must be non-negative, got {n_balls}")
        if stream.n_bins != n_bins:
            raise ConfigurationError(
                "probe_stream.n_bins does not match the requested n_bins"
            )
        self.protocol = protocol
        self.n_balls = int(n_balls)
        self.n_bins = int(n_bins)
        self.stream = stream
        self.placed = 0
        self._final: RunResult | None = None

    # ------------------------------------------------------------------ #
    # Introspection between place() calls
    # ------------------------------------------------------------------ #
    @property
    @abstractmethod
    def loads(self) -> np.ndarray:
        """Current per-bin ball counts (live view; do not mutate)."""

    @property
    @abstractmethod
    def probes(self) -> int:
        """Probes consumed so far (the run's allocation time to date)."""

    @property
    def weighted_loads(self) -> np.ndarray | None:
        """Current per-bin total weight, for weighted sessions (else None)."""
        return None

    def probe_checkpoints(self) -> list[int]:
        """Cumulative probe counts at completed stage boundaries (if any)."""
        return []

    @property
    def remaining(self) -> int:
        return self.n_balls - self.placed

    # ------------------------------------------------------------------ #
    # Driving the run
    # ------------------------------------------------------------------ #
    def place(self, k: int) -> int:
        """Place the next ``min(k, remaining)`` balls; returns how many."""
        if self._final is not None:
            raise ProtocolError("session already finalised; start a new one")
        if k < 0:
            raise ConfigurationError(f"k must be non-negative, got {k}")
        k = min(int(k), self.remaining)
        if k:
            self._place(k)
            self.placed += k
        return k

    @abstractmethod
    def _place(self, k: int) -> None:
        """Place exactly ``k`` more balls (``k`` ≥ 1, within bounds)."""

    def result(self) -> RunResult:
        """Place any remaining balls and return the finished run's record.

        Bit-identical to the protocol's one-shot
        :meth:`~repro.core.protocol.AllocationProtocol.allocate` for the
        same seed / probe stream, however the preceding ``place`` calls were
        split.  Idempotent: repeated calls return the same object.
        """
        if self._final is None:
            self.place(self.remaining)
            self._final = self._finalize()
        return self._final

    @abstractmethod
    def _finalize(self) -> RunResult:
        """Build the final result (called once, after all balls placed)."""


class StagedWindowSession(ProtocolSession):
    """Session over constant-acceptance-limit windows (ADAPTIVE/THRESHOLD).

    Parameters
    ----------
    limits:
        ``limit_for_ball(i)`` giving the acceptance limit of 1-indexed ball
        ``i`` (constant within each stage of ``n_bins`` balls by
        construction of both protocols).
    checkpoint_stages:
        Log a cost checkpoint when a stage completes (ADAPTIVE's one-shot
        implementation does; THRESHOLD's only does in trace mode).
    record_trace:
        Record the same per-stage :class:`~repro.runtime.trace.StageRecord`
        rows as the one-shot implementation.
    """

    def __init__(
        self,
        protocol,
        n_balls: int,
        n_bins: int,
        stream: ProbeStream,
        *,
        block_size: int | None,
        checkpoint_stages: bool,
        record_trace: bool,
    ) -> None:
        super().__init__(protocol, n_balls, n_bins, stream)
        self._loads = np.zeros(n_bins, dtype=np.int64)
        self._block_size = block_size
        self._checkpoint_stages = checkpoint_stages or record_trace
        self.costs = CostModel()
        self.trace = Trace() if record_trace else None
        self._stage_probes = 0  # probes consumed in the currently open stage

    def _limit_for_ball(self, i: int) -> int:
        raise NotImplementedError

    @property
    def loads(self) -> np.ndarray:
        return self._loads

    @property
    def probes(self) -> int:
        return self.costs.probes

    def probe_checkpoints(self) -> list[int]:
        return self.costs.probe_checkpoints

    def _place(self, k: int) -> None:
        n = self.n_bins
        done = 0
        while done < k:
            i = self.placed + done + 1  # 1-indexed next ball
            stage_last_ball = ((i - 1) // n + 1) * n
            seg = min(k - done, stage_last_ball - i + 1)
            outcome = fill_window(
                self._loads,
                self._limit_for_ball(i),
                seg,
                self.stream,
                block_size=self._block_size,
            )
            self.costs.add_probes(outcome.probes)
            self._stage_probes += outcome.probes
            done += seg
            balls_so_far = self.placed + done
            if balls_so_far == min(stage_last_ball, self.n_balls):
                # The stage (or the final partial stage) just completed —
                # exactly where the one-shot run logs its checkpoint/record.
                if self._checkpoint_stages:
                    self.costs.log_probe_checkpoint()
                if self.trace is not None:
                    stage = (i - 1) // n
                    first_ball = stage * n + 1
                    self.trace.append(
                        StageRecord(
                            stage=stage,
                            balls_placed=balls_so_far - first_ball + 1,
                            probes=self._stage_probes,
                            max_load=int(self._loads.max()),
                            min_load=int(self._loads.min()),
                            quadratic_potential=quadratic_potential(
                                self._loads, balls_so_far
                            ),
                            exponential_potential=exponential_potential(
                                self._loads, balls_so_far, DEFAULT_EPSILON
                            ),
                        )
                    )
                self._stage_probes = 0

    def _finalize(self) -> RunResult:
        costs = self.costs
        if not self._checkpoint_stages:
            # The one-shot non-traced THRESHOLD run records the probe total
            # in a single add_probes call and no checkpoints; rebuild the
            # same flat cost model.
            costs = CostModel(probes=self.costs.probes)
        return RunResult(
            protocol=self.protocol.name,
            n_balls=self.n_balls,
            n_bins=self.n_bins,
            loads=self._loads,
            allocation_time=self.costs.probes,
            costs=costs,
            trace=self.trace,
            params=self.protocol.params(),
        )
