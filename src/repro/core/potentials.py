"""Smoothness measures of load vectors: the paper's potential functions.

Section 2 of the paper introduces two potential functions used to quantify
how *smooth* (close to perfectly balanced) a load distribution is:

* the quadratic potential ``Ψ(ℓ) = Σ_i (ℓ_i − t/n)²`` (Awerbuch et al.), and
* the exponential potential ``Φ(ℓ) = Σ_i (1+ε)^{t/n + 2 − ℓ_i}`` with
  ``ε = 1/200`` (Ghosh et al.),

where ``t`` is the number of balls placed so far.  Corollary 3.5 shows both
stay ``O(n)`` for ADAPTIVE, while Lemma 4.2 shows they blow up polynomially /
exponentially for THRESHOLD when ``m = n²`` — this contrast is the paper's
smoothness result and is reproduced by the Figure 3(b) and smoothness
benchmarks.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError

__all__ = [
    "DEFAULT_EPSILON",
    "quadratic_potential",
    "exponential_potential",
    "log_exponential_potential",
    "load_gap",
    "holes",
    "underloaded_bins",
    "smoothness_summary",
]

#: The paper fixes ``ε = 1/200`` in the exponential potential (Section 2).
DEFAULT_EPSILON: float = 1.0 / 200.0


def _as_loads(loads: np.ndarray) -> np.ndarray:
    arr = np.asarray(loads)
    if arr.ndim != 1:
        raise ConfigurationError("loads must be a 1-D array")
    if arr.size == 0:
        raise ConfigurationError("loads must be non-empty")
    if np.any(arr < 0):
        raise ConfigurationError("loads must be non-negative")
    return arr.astype(np.float64, copy=False)


def quadratic_potential(loads: np.ndarray, total_balls: int | None = None) -> float:
    """Quadratic potential ``Ψ(ℓ) = Σ_i (ℓ_i − t/n)²``.

    Parameters
    ----------
    loads:
        Load vector of length ``n``.
    total_balls:
        The number of balls ``t`` used for the average ``t/n``; defaults to
        ``loads.sum()`` (the usual case where the vector accounts for every
        placed ball).
    """
    arr = _as_loads(loads)
    t = float(arr.sum()) if total_balls is None else float(total_balls)
    mean = t / arr.size
    return float(np.sum((arr - mean) ** 2))


def exponential_potential(
    loads: np.ndarray,
    total_balls: int | None = None,
    epsilon: float = DEFAULT_EPSILON,
) -> float:
    """Exponential potential ``Φ(ℓ) = Σ_i (1+ε)^{t/n + 2 − ℓ_i}``.

    Overloaded bins (load above ``t/n + 2``) contribute less than one;
    underloaded bins contribute exponentially in the size of their "hole",
    which is exactly why ``Φ = O(n)`` forces a small max−min gap
    (Corollary 3.5).

    Note that for very unbalanced vectors (THRESHOLD with ``m = n²``,
    Lemma 4.2) this quantity overflows ``float64``; use
    :func:`log_exponential_potential` for those regimes.
    """
    if epsilon <= 0:
        raise ConfigurationError(f"epsilon must be positive, got {epsilon}")
    arr = _as_loads(loads)
    t = float(arr.sum()) if total_balls is None else float(total_balls)
    exponents = t / arr.size + 2.0 - arr
    return float(np.sum(np.power(1.0 + epsilon, exponents)))


def log_exponential_potential(
    loads: np.ndarray,
    total_balls: int | None = None,
    epsilon: float = DEFAULT_EPSILON,
) -> float:
    """Natural logarithm of ``Φ``, computed stably via ``logsumexp``.

    Lemma 4.2(3) states ``Φ = 2^{Ω(n^{1/8})}`` for THRESHOLD with ``m = n²``;
    verifying that experimentally requires working in log-space.
    """
    if epsilon <= 0:
        raise ConfigurationError(f"epsilon must be positive, got {epsilon}")
    arr = _as_loads(loads)
    t = float(arr.sum()) if total_balls is None else float(total_balls)
    exponents = (t / arr.size + 2.0 - arr) * np.log1p(epsilon)
    peak = float(np.max(exponents))
    return peak + float(np.log(np.sum(np.exp(exponents - peak))))


def load_gap(loads: np.ndarray) -> int:
    """Difference between the maximum and minimum load."""
    arr = np.asarray(loads)
    if arr.ndim != 1 or arr.size == 0:
        raise ConfigurationError("loads must be a non-empty 1-D array")
    return int(arr.max() - arr.min())


def holes(loads: np.ndarray, limit: int) -> int:
    """Total number of *holes* below ``limit``: ``Σ_i max(limit − ℓ_i, 0)``.

    The proof of Theorem 4.1 tracks exactly this quantity with
    ``limit = ϕ + 1``; the protocol has finished once the number of holes is
    at most ``n`` minus... more precisely once every ball is placed, i.e.
    ``holes = (ϕ+1)·n − m`` for THRESHOLD.
    """
    arr = np.asarray(loads)
    if arr.ndim != 1 or arr.size == 0:
        raise ConfigurationError("loads must be a non-empty 1-D array")
    return int(np.sum(np.maximum(limit - arr, 0)))


def underloaded_bins(
    loads: np.ndarray, total_balls: int | None = None, margin: int = 2
) -> np.ndarray:
    """Indices of bins whose load is below ``t/n + margin − C`` ... (see notes).

    In the analysis a bin is *underloaded at the end of stage τ* when its load
    is less than ``τ + 2 − C₁``.  Experimentally we expose the simpler notion
    "load below the average minus ``margin``", which is what the smoothness
    experiments plot.
    """
    arr = np.asarray(loads)
    if arr.ndim != 1 or arr.size == 0:
        raise ConfigurationError("loads must be a non-empty 1-D array")
    t = float(arr.sum()) if total_balls is None else float(total_balls)
    mean = t / arr.size
    return np.flatnonzero(arr < mean - margin)


def smoothness_summary(
    loads: np.ndarray,
    total_balls: int | None = None,
    epsilon: float = DEFAULT_EPSILON,
) -> dict[str, float]:
    """Return all smoothness statistics of a load vector in one dictionary.

    Keys: ``max_load``, ``min_load``, ``gap``, ``quadratic_potential``,
    ``log_exponential_potential`` and ``std`` (population standard deviation).
    """
    arr = np.asarray(loads)
    if arr.ndim != 1 or arr.size == 0:
        raise ConfigurationError("loads must be a non-empty 1-D array")
    return {
        "max_load": float(arr.max()),
        "min_load": float(arr.min()),
        "gap": float(arr.max() - arr.min()),
        "quadratic_potential": quadratic_potential(arr, total_balls),
        "log_exponential_potential": log_exponential_potential(
            arr, total_balls, epsilon
        ),
        "std": float(np.std(arr)),
    }
