"""Exception hierarchy for the :mod:`repro` package.

All library-raised exceptions derive from :class:`ReproError` so callers can
catch everything coming out of the reproduction code with a single handler
while still being able to distinguish configuration problems from runtime
failures of the simulated protocols.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "ConfigurationError",
    "ProtocolError",
    "CapacityExceededError",
    "SimulationError",
    "ClusterError",
    "CheckpointError",
    "ExperimentError",
]


class ReproError(Exception):
    """Base class for every exception raised by the :mod:`repro` package."""


class ConfigurationError(ReproError, ValueError):
    """Raised when user-supplied parameters are invalid.

    Examples include a non-positive number of bins, a negative number of
    balls, or a protocol option outside its documented range.
    """


class ProtocolError(ReproError, RuntimeError):
    """Raised when an allocation protocol reaches an inconsistent state.

    This indicates a bug in the simulation rather than bad user input; the
    test-suite asserts that it is never raised for valid configurations.
    """


class CapacityExceededError(ProtocolError):
    """Raised when a placement would exceed a bin's hard capacity.

    Used by the hashing substrate (bounded buckets, cuckoo tables) and by the
    protocol engines to signal that an insertion cannot be honoured.
    """


class SimulationError(ProtocolError):
    """Raised when a simulated run cannot make progress.

    The canonical case is a probe loop whose acceptance condition can never
    be satisfied by the supplied probe source (e.g. a replay stream that only
    ever probes saturated bins): the weighted engines cap the number of
    probes any single ball may consume and raise this error instead of
    spinning forever.
    """


class ClusterError(SimulationError):
    """Raised when a distributed sweep cannot be completed.

    The :mod:`repro.cluster` coordinator retries shards lost to worker
    death; this error is raised when a shard exhausts its retry budget, or
    when a worker reports a deterministic failure (re-dispatching the same
    spec would fail the same way).  Configuration problems of the cluster
    layer itself (a non-positive worker count, an unusable transport) raise
    :class:`ConfigurationError` instead.
    """


class CheckpointError(ReproError, RuntimeError):
    """Raised when a checkpoint file cannot be read back as a snapshot.

    Covers missing files, torn writes (truncated / invalid JSON — e.g. a
    crash landed mid-``os.replace`` on an exotic filesystem), and documents
    that are valid JSON but not a dispatcher state.  The message always
    names the offending file so an operator can decide whether to fall back
    to a previous snapshot (the :class:`~repro.resilience.ServiceSupervisor`
    does this automatically) or start cold.
    """


class ExperimentError(ReproError, RuntimeError):
    """Raised when an experiment harness cannot produce the requested output."""
